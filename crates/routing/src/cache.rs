//! Shared shortest-path cost cache.
//!
//! The paper precomputes the all-pairs shortest paths of the Chengdu graph
//! and serves them from memory so that every scheme enjoys O(1) queries
//! (Sec. V-A4). All-pairs storage is infeasible beyond toy graphs, so we
//! provide the equivalent amortized behaviour: a memoizing point-to-point
//! cache backed by bidirectional Dijkstra, shared by *all* schemes so the
//! response-time comparison stays fair.
//!
//! The memo is split into lock-striped shards keyed by the source node so
//! that the speculative batch-dispatch workers can probe and fill it
//! concurrently without serializing on one mutex. Each shard owns its own
//! search engine (the engine is per-query scratch state, so one per shard
//! keeps a miss from blocking other shards). Both the search and the memo
//! quantize costs to `f32`, which makes every answer independent of lookup
//! history and thread interleaving: hit or miss, a query returns the same
//! canonical value.
//!
//! # Pluggable exact backend
//!
//! Cost misses are answered by a [`RouterBackend`]: plain bidirectional
//! Dijkstra (the default), a preprocessed [`ContractionHierarchy`], or a
//! [`CustomizableCh`]. All are exact, and because edge costs live on the
//! dyadic grid (`mtshare_road::COST_QUANTUM_S`) they return
//! *bit-identical* values, so switching backends can never change
//! simulator behaviour — only speed. Under the CH/CCH backends,
//! [`PathCache::prime_many_to_one`] additionally batches "K taxi
//! positions → one pickup" probes through a bucket kernel
//! ([`ChBuckets`] / [`CchBuckets`]) — one downward sweep instead of K
//! searches.
//!
//! Paths always come from bidirectional Dijkstra, regardless of backend:
//! when several shortest paths tie, CH unpacking and bidirectional search
//! can legitimately pick different (equal-cost) vertex sequences, and a
//! different committed route would change taxi trajectories and therefore
//! trace bytes. Costs are the hot query mix; paths are only materialized
//! when a schedule commits.
//!
//! # Re-customization
//!
//! A regional traffic shift changes the metric mid-run. The bidir and
//! CCH backends support [`PathCache::recustomize`]: swap in the shifted
//! graph (re-customizing the CCH metric in milliseconds), clear the memo,
//! and every subsequent answer — cost, prime, or path — is exact on the
//! *shifted* graph. The plain-CH backend cannot (its order and shortcut
//! weights bake in the metric); callers gate on
//! [`PathCache::is_recustomizable`].

use crate::bidirectional::BidirDijkstra;
use crate::cch::{CchBuckets, CchQuery, CchStats, CustomizableCh};
use crate::ch::{ChBuckets, ChQuery, ChStats, ContractionHierarchy};
use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;
use std::sync::Arc;

/// The exact engine a [`PathCache`] uses to answer cost misses.
#[derive(Debug, Clone, Default)]
pub enum RouterBackend {
    /// Bidirectional Dijkstra, no preprocessing (the seed behaviour).
    #[default]
    Bidir,
    /// Preprocessed contraction hierarchy (must be built from — or loaded
    /// against — the same [`RoadNetwork`] the cache serves).
    Ch(Arc<ContractionHierarchy>),
    /// Customizable contraction hierarchy (skeleton built from the same
    /// [`RoadNetwork`] the cache serves; metric re-customizable at run
    /// time via [`PathCache::recustomize`]).
    Cch(Arc<CustomizableCh>),
}

impl RouterBackend {
    /// Stable name for CLI/observability output.
    pub fn name(&self) -> &'static str {
        match self {
            RouterBackend::Bidir => "bidir",
            RouterBackend::Ch(_) => "ch",
            RouterBackend::Cch(_) => "cch",
        }
    }
}

/// The shared bucket many-to-one kernel of the active backend.
#[derive(Debug)]
enum BucketKernel {
    Ch(ChBuckets),
    Cch(CchBuckets),
}

/// Number of lock stripes. Power of two so the shard pick is a mask; 16
/// comfortably exceeds the worker counts the batch dispatcher uses.
const SHARDS: usize = 16;

/// Hit/miss/evict counters of a [`PathCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that ran a graph search.
    pub misses: u64,
    /// Entries dropped by [`PathCache::trim_to`]. Zero unless a caller
    /// bounds the memo (the default policy caches forever).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no queries were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheShard {
    costs: FxHashMap<u64, f32>,
    engine: BidirDijkstra,
    /// CH query scratch when the backend is [`RouterBackend::Ch`].
    ch: Option<ChQuery>,
    /// CCH query scratch when the backend is [`RouterBackend::Cch`].
    cch: Option<CchQuery>,
    stats: CacheStats,
}

/// Thread-safe memoizing shortest-path oracle over a road network.
///
/// Costs are cached until the metric changes: the paper assumes static
/// traffic (Sec. III-A), and under `--disruptions` a regional traffic
/// shift triggers [`PathCache::recustomize`], which clears the memo.
/// Paths are *not* cached — they are only needed when a schedule is
/// actually committed, which is orders of magnitude rarer than cost
/// probes.
#[derive(Debug, Clone)]
pub struct PathCache {
    /// The graph answers are exact on *right now* — swapped wholesale by
    /// [`PathCache::recustomize`]; readers snapshot the `Arc`.
    live: Arc<RwLock<Arc<RoadNetwork>>>,
    shards: Arc<[Mutex<CacheShard>; SHARDS]>,
    hierarchy: Option<Arc<ContractionHierarchy>>,
    cch: Option<Arc<CustomizableCh>>,
    buckets: Option<Arc<Mutex<BucketKernel>>>,
}

impl PathCache {
    /// Creates an empty cache over `graph` with the default
    /// ([`RouterBackend::Bidir`]) backend.
    pub fn new(graph: Arc<RoadNetwork>) -> Self {
        Self::with_backend(graph, RouterBackend::Bidir)
    }

    /// Creates an empty cache over `graph` answering misses with `backend`.
    pub fn with_backend(graph: Arc<RoadNetwork>, backend: RouterBackend) -> Self {
        let (hierarchy, cch) = match &backend {
            RouterBackend::Bidir => (None, None),
            RouterBackend::Ch(ch) => {
                assert_eq!(
                    ch.graph_digest(),
                    graph.digest(),
                    "contraction hierarchy was built for a different graph"
                );
                (Some(ch.clone()), None)
            }
            RouterBackend::Cch(cch) => {
                assert_eq!(
                    cch.graph_digest(),
                    graph.digest(),
                    "customizable hierarchy was built for a different graph"
                );
                assert_eq!(
                    cch.metric_graph_digest(),
                    graph.digest(),
                    "customizable hierarchy carries a metric for a different graph"
                );
                (None, Some(cch.clone()))
            }
        };
        let shards = std::array::from_fn(|_| {
            Mutex::new(CacheShard {
                costs: FxHashMap::default(),
                engine: BidirDijkstra::new(&graph),
                ch: hierarchy.as_ref().map(|h| ChQuery::new(h.clone())),
                cch: cch.as_ref().map(|h| CchQuery::new(h.clone())),
                stats: CacheStats::default(),
            })
        });
        let buckets = match (&hierarchy, &cch) {
            (Some(h), _) => Some(Arc::new(Mutex::new(BucketKernel::Ch(ChBuckets::new(h.clone()))))),
            (_, Some(h)) => {
                Some(Arc::new(Mutex::new(BucketKernel::Cch(CchBuckets::new(h.clone())))))
            }
            _ => None,
        };
        Self {
            live: Arc::new(RwLock::new(graph)),
            shards: Arc::new(shards),
            hierarchy,
            cch,
            buckets,
        }
    }

    /// Name of the active backend (`"bidir"`, `"ch"`, or `"cch"`).
    pub fn backend_name(&self) -> &'static str {
        if self.hierarchy.is_some() {
            "ch"
        } else if self.cch.is_some() {
            "cch"
        } else {
            "bidir"
        }
    }

    /// The shared hierarchy when the backend is [`RouterBackend::Ch`].
    pub fn hierarchy(&self) -> Option<&Arc<ContractionHierarchy>> {
        self.hierarchy.as_ref()
    }

    /// The shared hierarchy when the backend is [`RouterBackend::Cch`].
    pub fn customizable(&self) -> Option<&Arc<CustomizableCh>> {
        self.cch.as_ref()
    }

    /// CH query/bucket counters, when the backend is [`RouterBackend::Ch`].
    pub fn ch_stats(&self) -> Option<ChStats> {
        self.hierarchy.as_ref().map(|h| h.stats())
    }

    /// CCH query/customization counters, when the backend is
    /// [`RouterBackend::Cch`].
    pub fn cch_stats(&self) -> Option<CchStats> {
        self.cch.as_ref().map(|h| h.stats())
    }

    /// Whether [`PathCache::recustomize`] is supported (every backend
    /// except plain CH, whose order and weights bake in the metric).
    pub fn is_recustomizable(&self) -> bool {
        self.hierarchy.is_none()
    }

    /// Swaps the metric: all subsequent answers are exact on `graph`
    /// (same topology as the current graph, different edge costs — e.g.
    /// from [`mtshare_road::apply_traffic_shifts`]). Re-customizes the
    /// CCH metric when that backend is active and clears the memo.
    /// Returns the CCH metric generation, if any.
    ///
    /// Answers already handed out were exact on the previous metric;
    /// in-flight probes in other threads may still read it — callers
    /// serialize re-customization against dispatch (the simulator does
    /// this naturally: shifts apply between events).
    ///
    /// # Panics
    /// Panics under the plain-CH backend (gate on
    /// [`PathCache::is_recustomizable`]) or when `graph` has a different
    /// vertex count.
    pub fn recustomize(&self, graph: Arc<RoadNetwork>) -> Option<u64> {
        assert!(
            self.is_recustomizable(),
            "plain-ch backend cannot re-customize; rebuild the hierarchy instead"
        );
        assert_eq!(
            graph.node_count(),
            self.live.read().node_count(),
            "re-customization graph must share the topology"
        );
        let generation = self.cch.as_ref().map(|h| h.customize(&graph));
        *self.live.write() = graph;
        for shard in self.shards.iter() {
            shard.lock().costs.clear();
        }
        generation
    }

    /// The road network answers are currently exact on (a snapshot: the
    /// cache may re-customize after this returns).
    #[inline]
    pub fn graph(&self) -> Arc<RoadNetwork> {
        self.live.read().clone()
    }

    #[inline]
    fn key(a: NodeId, b: NodeId) -> u64 {
        ((a.0 as u64) << 32) | b.0 as u64
    }

    /// Stripe by source node: batch workers probing different requests'
    /// legs mostly start from distinct sources, so they land on distinct
    /// locks.
    #[inline]
    fn shard(&self, a: NodeId) -> &Mutex<CacheShard> {
        &self.shards[a.0 as usize & (SHARDS - 1)]
    }

    /// Shortest-path cost in seconds from `a` to `b`, or `None` when
    /// unreachable. Unreachability is memoized too.
    pub fn cost(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let key = Self::key(a, b);
        let mut shard = self.shard(a).lock();
        if let Some(&c) = shard.costs.get(&key) {
            shard.stats.hits += 1;
            return c.is_finite().then_some(c as f64);
        }
        shard.stats.misses += 1;
        let cost = if let Some(q) = shard.ch.as_mut() {
            q.cost(a, b)
        } else if let Some(q) = shard.cch.as_mut() {
            q.cost(a, b)
        } else {
            let graph = self.live.read().clone();
            shard.engine.cost(&graph, a, b)
        };
        shard.costs.insert(key, cost.map_or(f32::INFINITY, |c| c as f32));
        cost
    }

    /// Batch-primes the memo with the costs from every `source` to
    /// `target` using the bucket many-to-one kernel — one downward sweep
    /// instead of one search per source. No-op (returns 0) under the
    /// bidirectional backend, where there is nothing cheaper than the
    /// per-pair search the memo already does; the values installed are
    /// bit-identical to what per-pair queries would produce, so callers
    /// never observe which path filled the memo. Returns the number of
    /// pairs computed (already-memoized pairs are skipped).
    pub fn prime_many_to_one(&self, sources: &[NodeId], target: NodeId) -> usize {
        let Some(buckets) = &self.buckets else {
            return 0;
        };
        let mut missing: Vec<NodeId> = Vec::with_capacity(sources.len());
        for &s in sources {
            if s == target {
                continue;
            }
            if !self.shard(s).lock().costs.contains_key(&Self::key(s, target)) {
                missing.push(s);
            }
        }
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return 0;
        }
        let costs = match &mut *buckets.lock() {
            BucketKernel::Ch(b) => b.many_to_one(&missing, target),
            BucketKernel::Cch(b) => b.many_to_one(&missing, target),
        };
        for (&s, c) in missing.iter().zip(&costs) {
            let mut shard = self.shard(s).lock();
            if let Entry::Vacant(slot) = shard.costs.entry(Self::key(s, target)) {
                slot.insert(c.map_or(f32::INFINITY, |c| c as f32));
                shard.stats.misses += 1;
            }
        }
        missing.len()
    }

    /// Shortest path from `a` to `b` (computed fresh; its cost is memoized).
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Path> {
        let graph = self.live.read().clone();
        let mut shard = self.shard(a).lock();
        let p = shard.engine.path(&graph, a, b)?;
        let key = Self::key(a, b);
        shard.costs.entry(key).or_insert(p.cost_s as f32);
        Some(p)
    }

    /// Pre-warms the memo with all pairs from `sources` × `targets`.
    pub fn warm(&self, sources: &[NodeId], targets: &[NodeId]) {
        for &s in sources {
            for &t in targets {
                let _ = self.cost(s, t);
            }
        }
    }

    /// Snapshot of hit/miss/evict counters, aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Bounds the memo to at most `max_entries`, dropping whole shards'
    /// overflow (entries are evicted in unspecified order; the memo only
    /// accelerates, it never changes answers). Returns how many entries
    /// were evicted. Deployments replaying city-scale traces call this
    /// between episodes to cap resident memory.
    pub fn trim_to(&self, max_entries: usize) -> u64 {
        let per_shard = max_entries / SHARDS;
        let mut evicted = 0u64;
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            if s.costs.len() > per_shard {
                let excess = (s.costs.len() - per_shard) as u64;
                if per_shard == 0 {
                    s.costs.clear();
                } else {
                    let keep: Vec<u64> = s.costs.keys().copied().take(per_shard).collect();
                    let kept: FxHashMap<u64, f32> = keep.iter().map(|k| (*k, s.costs[k])).collect();
                    s.costs = kept;
                }
                s.stats.evictions += excess;
                evicted += excess;
            }
        }
        evicted
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().costs.len()).sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident memory of the memo in bytes.
    pub fn memory_bytes(&self) -> usize {
        // key (8) + value (4) + hashbrown overhead ≈ 1 ctrl byte + padding.
        self.shards.iter().map(|s| s.lock().costs.capacity() * (8 + 4 + 2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};

    fn cache() -> (Arc<RoadNetwork>, PathCache) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let c = PathCache::new(g.clone());
        (g, c)
    }

    #[test]
    fn cost_matches_dijkstra_and_hits_on_repeat() {
        let (g, c) = cache();
        let mut d = Dijkstra::new(&g);
        let want = d.cost(&g, NodeId(0), NodeId(399)).unwrap();
        let got1 = c.cost(NodeId(0), NodeId(399)).unwrap();
        let got2 = c.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((got1 - want).abs() < 1e-2);
        assert_eq!(got1, got2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_cost_is_zero_and_free() {
        let (_, c) = cache();
        assert_eq!(c.cost(NodeId(5), NodeId(5)), Some(0.0));
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn direction_matters_in_the_key() {
        let (_, c) = cache();
        let ab = c.cost(NodeId(0), NodeId(399)).unwrap();
        let ba = c.cost(NodeId(399), NodeId(0)).unwrap();
        // Jittered directed grid: costs differ between directions.
        assert_eq!(c.stats().misses, 2);
        assert!(ab > 0.0 && ba > 0.0);
    }

    #[test]
    fn path_agrees_with_cost() {
        let (_, c) = cache();
        let p = c.path(NodeId(3), NodeId(200)).unwrap();
        let cost = c.cost(NodeId(3), NodeId(200)).unwrap();
        assert!((p.cost_s - cost).abs() < 1e-2);
    }

    #[test]
    fn unreachable_memoized() {
        use mtshare_road::{EdgeSpec, GeoPoint};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = Arc::new(RoadNetwork::new(pts, &edges).unwrap());
        let c = PathCache::new(g);
        assert_eq!(c.cost(NodeId(1), NodeId(0)), None);
        assert_eq!(c.cost(NodeId(1), NodeId(0)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn warm_fills_the_memo() {
        let (_, c) = cache();
        c.warm(&[NodeId(0), NodeId(1)], &[NodeId(10), NodeId(11)]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn trim_to_counts_evictions_and_keeps_answers_correct() {
        let (g, c) = cache();
        let sources: Vec<NodeId> = (0..8).map(NodeId).collect();
        let targets: Vec<NodeId> = (390..399).map(NodeId).collect();
        c.warm(&sources, &targets);
        let before = c.len();
        assert!(before > 0);
        let evicted = c.trim_to(0);
        assert_eq!(evicted, before as u64);
        assert_eq!(c.stats().evictions, evicted);
        assert!(c.is_empty());
        // A re-query after eviction still returns the canonical value.
        let mut d = Dijkstra::new(&g);
        let want = d.cost(&g, NodeId(0), NodeId(390)).unwrap();
        let got = c.cost(NodeId(0), NodeId(390)).unwrap();
        assert!((got - want).abs() < 1e-2);
        // Trimming to a generous bound evicts nothing.
        assert_eq!(c.trim_to(1 << 20), 0);
    }

    #[test]
    fn ch_backend_returns_bit_identical_costs_and_primes_the_memo() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let ch = Arc::new(crate::ch::ContractionHierarchy::build(&g, 2));
        let bidir = PathCache::new(g.clone());
        let cached = PathCache::with_backend(g.clone(), RouterBackend::Ch(ch));
        assert_eq!(bidir.backend_name(), "bidir");
        assert_eq!(cached.backend_name(), "ch");
        assert!(cached.hierarchy().is_some());

        // Bucket priming installs exactly the values per-pair queries find.
        let sources: Vec<NodeId> = (0..32).map(|i| NodeId(i * 7 % 400)).collect();
        let target = NodeId(399);
        let computed = cached.prime_many_to_one(&sources, target);
        assert!(computed > 0);
        // `bidir` never primes: the bucket kernel needs a hierarchy.
        assert_eq!(bidir.prime_many_to_one(&sources, target), 0);
        for &s in &sources {
            assert_eq!(cached.cost(s, target), bidir.cost(s, target), "{s}");
        }
        // Every probe above hit the primed memo (sources are distinct and
        // none equals the target, so all 32 were bucket-computed).
        assert_eq!(computed, sources.len());
        let st = cached.stats();
        assert_eq!(st.hits as usize, sources.len());
        let ch_stats = cached.ch_stats().unwrap();
        assert_eq!(ch_stats.bucket_sweeps, 1);
        // Re-priming the same batch computes nothing new.
        assert_eq!(cached.prime_many_to_one(&sources, target), 0);
        assert_eq!(cached.ch_stats().unwrap().bucket_sweeps, 1);

        // Plain cost misses route through the CH query path.
        assert_eq!(cached.cost(NodeId(1), NodeId(398)), bidir.cost(NodeId(1), NodeId(398)));
        assert!(cached.ch_stats().unwrap().p2p_queries > 0);
        // Paths still come from the canonical bidirectional engine.
        assert_eq!(cached.path(NodeId(1), NodeId(398)), bidir.path(NodeId(1), NodeId(398)));
    }

    #[test]
    fn cch_backend_matches_bidir_and_recustomizes() {
        use mtshare_road::{apply_traffic_shifts, TrafficShiftSpec};
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cch = Arc::new(crate::cch::CustomizableCh::build(&g));
        let cached = PathCache::with_backend(g.clone(), RouterBackend::Cch(cch));
        let bidir = PathCache::new(g.clone());
        assert_eq!(cached.backend_name(), "cch");
        assert!(cached.customizable().is_some());
        assert!(cached.is_recustomizable() && bidir.is_recustomizable());
        assert!(cached.ch_stats().is_none());

        let sources: Vec<NodeId> = (0..24).map(|i| NodeId(i * 13 % 400)).collect();
        let target = NodeId(397);
        assert!(cached.prime_many_to_one(&sources, target) > 0);
        for &s in &sources {
            assert_eq!(cached.cost(s, target), bidir.cost(s, target), "{s}");
        }
        assert_eq!(cached.cost(NodeId(2), NodeId(391)), bidir.cost(NodeId(2), NodeId(391)));
        assert!(cached.cch_stats().unwrap().p2p_queries > 0);

        // Shift a region; both recustomizable backends agree bit-for-bit
        // with fresh Dijkstra on the shifted graph — cost, prime, & path.
        let spec = TrafficShiftSpec {
            center: NodeId(200),
            radius_m: 600.0,
            factor: 2.0,
            start_s: 0.0,
            duration_s: 1.0,
        };
        let shifted = Arc::new(apply_traffic_shifts(&g, &[spec]).unwrap());
        assert_eq!(cached.recustomize(shifted.clone()), Some(1));
        assert_eq!(bidir.recustomize(shifted.clone()), None);
        assert_eq!(cached.graph().digest(), shifted.digest());
        let mut d = Dijkstra::new(&shifted);
        for &s in sources.iter().take(8) {
            let want = d.cost(&shifted, s, target);
            assert_eq!(cached.cost(s, target), want, "{s}");
            assert_eq!(bidir.cost(s, target), want, "{s}");
        }
        assert!(cached.prime_many_to_one(&sources, NodeId(11)) > 0);
        for &s in sources.iter().take(8) {
            assert_eq!(cached.cost(s, NodeId(11)), d.cost(&shifted, s, NodeId(11)), "{s}");
        }
        let p = cached.path(NodeId(0), NodeId(399)).unwrap();
        assert_eq!(Some(p.cost_s), d.cost(&shifted, NodeId(0), NodeId(399)));
        assert_eq!(cached.cch_stats().unwrap().customizations, 2);
    }

    #[test]
    #[should_panic(expected = "cannot re-customize")]
    fn ch_backend_rejects_recustomize() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let ch = Arc::new(crate::ch::ContractionHierarchy::build(&g, 1));
        let cached = PathCache::with_backend(g.clone(), RouterBackend::Ch(ch));
        assert!(!cached.is_recustomizable());
        cached.recustomize(g);
    }

    #[test]
    fn sources_land_on_distinct_shards_but_answers_agree() {
        // Sources 0..16 map to all 16 stripes; repeat queries hit their
        // own shard's memo and aggregate counters stay exact.
        let (g, c) = cache();
        let mut d = Dijkstra::new(&g);
        for src in 0..16u32 {
            let want = d.cost(&g, NodeId(src), NodeId(399)).unwrap();
            let got = c.cost(NodeId(src), NodeId(399)).unwrap();
            assert!((got - want).abs() < 1e-2, "src={src}");
            assert_eq!(c.cost(NodeId(src), NodeId(399)), Some(got));
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (16, 16));
        assert_eq!(c.len(), 16);
    }
}
