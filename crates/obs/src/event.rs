//! Typed dispatch-lifecycle events and their JSONL encoding.
//!
//! Determinism contract: every event is stamped with *simulation* time
//! and emitted from the sequential commit side of the simulator, in
//! request-commit order. The encoded stream is therefore byte-identical
//! at any `--parallelism`. Wall-clock never appears here — it lives
//! only in the summary's strippable `profiling` subtree.

use crate::json::fmt_f64;
use std::fmt::Write as _;

/// Why a request could not be served. The order of variants is the
/// classification order: the first failing precondition names the
/// reason (a request with an unreachable OD *and* an empty fleet is
/// `EmptyFleet`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// No taxis exist at all.
    EmptyFleet,
    /// No path between origin and destination on the road graph.
    UnreachableOd,
    /// The deadline does not even cover the direct drive.
    InfeasibleDeadline,
    /// No taxi has capacity for the requested party size.
    ZeroCapacity,
    /// Capacity and reachability were fine, but no schedule insertion
    /// satisfied every rider's deadline.
    NoFeasibleInsertion,
    /// An offline (encounter-based) request expired before any taxi
    /// passed close enough.
    OfflineExpired,
}

impl RejectReason {
    /// All variants in stable (serialization) order.
    pub const ALL: [RejectReason; 6] = [
        RejectReason::EmptyFleet,
        RejectReason::UnreachableOd,
        RejectReason::InfeasibleDeadline,
        RejectReason::ZeroCapacity,
        RejectReason::NoFeasibleInsertion,
        RejectReason::OfflineExpired,
    ];

    /// The snake_case label used in JSONL events and the summary.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::EmptyFleet => "empty_fleet",
            RejectReason::UnreachableOd => "unreachable_od",
            RejectReason::InfeasibleDeadline => "infeasible_deadline",
            RejectReason::ZeroCapacity => "zero_capacity",
            RejectReason::NoFeasibleInsertion => "no_feasible_insertion",
            RejectReason::OfflineExpired => "offline_expired",
        }
    }

    /// Index into [`RejectReason::ALL`] (and the counter array).
    pub fn index(self) -> usize {
        match self {
            RejectReason::EmptyFleet => 0,
            RejectReason::UnreachableOd => 1,
            RejectReason::InfeasibleDeadline => 2,
            RejectReason::ZeroCapacity => 3,
            RejectReason::NoFeasibleInsertion => 4,
            RejectReason::OfflineExpired => 5,
        }
    }

    /// Inverse of [`RejectReason::label`].
    pub fn from_label(s: &str) -> Option<RejectReason> {
        RejectReason::ALL.iter().copied().find(|r| r.label() == s)
    }
}

/// One dispatch-lifecycle event. `t` is always simulation time in
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request entered the system.
    Arrival {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Whether this is an offline (encounter-based) request.
        offline: bool,
    },
    /// The dispatcher evaluated a request (whatever the outcome).
    Dispatch {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Candidate taxis examined.
        candidates: u32,
        /// Insertion instances that satisfied all constraints.
        feasible: u32,
    },
    /// A request was assigned to a taxi.
    Commit {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Winning taxi.
        taxi: u32,
        /// Extra seconds the shared ride adds over the direct drive.
        detour_s: f64,
        /// Stops in the taxi's schedule after insertion.
        schedule_len: u32,
    },
    /// A request was definitively rejected.
    Reject {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Classified cause.
        reason: RejectReason,
    },
    /// A taxi came within encounter radius of a waiting offline request.
    Encounter {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// The encountering taxi.
        taxi: u32,
    },
    /// A rider boarded.
    Pickup {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Serving taxi.
        taxi: u32,
        /// Seconds waited since release.
        wait_s: f64,
    },
    /// A rider was delivered.
    Dropoff {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Serving taxi.
        taxi: u32,
        /// Realized detour vs. the direct drive, seconds.
        detour_s: f64,
    },
}

/// Event kinds, for counting. Order matches serialization labels.
pub const EVENT_KINDS: [&str; 7] =
    ["arrival", "dispatch", "commit", "reject", "encounter", "pickup", "dropoff"];

impl Event {
    /// Simulation timestamp of the event.
    pub fn t(&self) -> f64 {
        match self {
            Event::Arrival { t, .. }
            | Event::Dispatch { t, .. }
            | Event::Commit { t, .. }
            | Event::Reject { t, .. }
            | Event::Encounter { t, .. }
            | Event::Pickup { t, .. }
            | Event::Dropoff { t, .. } => *t,
        }
    }

    /// Index into [`EVENT_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Arrival { .. } => 0,
            Event::Dispatch { .. } => 1,
            Event::Commit { .. } => 2,
            Event::Reject { .. } => 3,
            Event::Encounter { .. } => 4,
            Event::Pickup { .. } => 5,
            Event::Dropoff { .. } => 6,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline), with
    /// a fixed key order per kind so the byte stream is canonical.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Event::Arrival { t, req, offline } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"arrival","t":{},"req":{req},"offline":{offline}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Dispatch { t, req, candidates, feasible } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"dispatch","t":{},"req":{req},"candidates":{candidates},"feasible":{feasible}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Commit { t, req, taxi, detour_s, schedule_len } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"commit","t":{},"req":{req},"taxi":{taxi},"detour_s":{},"schedule_len":{schedule_len}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*detour_s)
                );
            }
            Event::Reject { t, req, reason } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"reject","t":{},"req":{req},"reason":"{}"}}"#,
                    fmt_f64(*t),
                    reason.label()
                );
            }
            Event::Encounter { t, req, taxi } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"encounter","t":{},"req":{req},"taxi":{taxi}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Pickup { t, req, taxi, wait_s } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"pickup","t":{},"req":{req},"taxi":{taxi},"wait_s":{}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*wait_s)
                );
            }
            Event::Dropoff { t, req, taxi, detour_s } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"dropoff","t":{},"req":{req},"taxi":{taxi},"detour_s":{}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*detour_s)
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_is_valid_json_with_expected_keys() {
        let evs = [
            Event::Arrival { t: 1.5, req: 7, offline: true },
            Event::Dispatch { t: 1.5, req: 7, candidates: 12, feasible: 3 },
            Event::Commit { t: 1.5, req: 7, taxi: 2, detour_s: 30.25, schedule_len: 4 },
            Event::Reject { t: 2.0, req: 8, reason: RejectReason::UnreachableOd },
            Event::Encounter { t: 3.0, req: 9, taxi: 1 },
            Event::Pickup { t: 4.0, req: 7, taxi: 2, wait_s: 61.5 },
            Event::Dropoff { t: 5.0, req: 7, taxi: 2, detour_s: 30.25 },
        ];
        for (i, ev) in evs.iter().enumerate() {
            let line = ev.to_jsonl();
            let v = json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some(EVENT_KINDS[i]));
            assert_eq!(v.get("t").and_then(|v| v.as_num()), Some(ev.t()));
            assert_eq!(ev.kind_index(), i);
        }
    }

    #[test]
    fn reject_reason_labels_round_trip() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(RejectReason::from_label(r.label()), Some(*r));
        }
        assert_eq!(RejectReason::from_label("nope"), None);
    }
}
