//! Typed dispatch-lifecycle events and their JSONL encoding.
//!
//! Determinism contract: every event is stamped with *simulation* time
//! and emitted from the sequential commit side of the simulator, in
//! request-commit order. The encoded stream is therefore byte-identical
//! at any `--parallelism`. Wall-clock never appears here — it lives
//! only in the summary's strippable `profiling` subtree.

use crate::json::fmt_f64;
use std::fmt::Write as _;

/// Why a request could not be served. The order of variants is the
/// classification order: the first failing precondition names the
/// reason (a request with an unreachable OD *and* an empty fleet is
/// `EmptyFleet`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// No taxis exist at all.
    EmptyFleet,
    /// No path between origin and destination on the road graph.
    UnreachableOd,
    /// The deadline does not even cover the direct drive.
    InfeasibleDeadline,
    /// No taxi has capacity for the requested party size.
    ZeroCapacity,
    /// Capacity and reachability were fine, but no schedule insertion
    /// satisfied every rider's deadline.
    NoFeasibleInsertion,
    /// An offline (encounter-based) request expired before any taxi
    /// passed close enough.
    OfflineExpired,
    /// The rider withdrew the request before pickup.
    CancelledByPassenger,
    /// The assigned taxi broke down and the stranded rider could not be
    /// recovered (e.g. no path from the breakdown position).
    TaxiFailed,
    /// Recovery re-dispatch attempts for an orphaned rider ran out of
    /// the bounded retry budget.
    RetriesExhausted,
    /// Service mode: the bounded admission queue was full and the
    /// `shed-oldest` policy dropped this (oldest queued) request.
    QueueShed,
    /// Service mode: the bounded admission queue was full and the
    /// `reject-new` policy turned this request away at the door.
    QueueRejected,
    /// Service mode: the request arrived after the drain protocol had
    /// already stopped admission.
    DrainRejected,
}

impl RejectReason {
    /// All variants in stable (serialization) order.
    pub const ALL: [RejectReason; 12] = [
        RejectReason::EmptyFleet,
        RejectReason::UnreachableOd,
        RejectReason::InfeasibleDeadline,
        RejectReason::ZeroCapacity,
        RejectReason::NoFeasibleInsertion,
        RejectReason::OfflineExpired,
        RejectReason::CancelledByPassenger,
        RejectReason::TaxiFailed,
        RejectReason::RetriesExhausted,
        RejectReason::QueueShed,
        RejectReason::QueueRejected,
        RejectReason::DrainRejected,
    ];

    /// The snake_case label used in JSONL events and the summary.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::EmptyFleet => "empty_fleet",
            RejectReason::UnreachableOd => "unreachable_od",
            RejectReason::InfeasibleDeadline => "infeasible_deadline",
            RejectReason::ZeroCapacity => "zero_capacity",
            RejectReason::NoFeasibleInsertion => "no_feasible_insertion",
            RejectReason::OfflineExpired => "offline_expired",
            RejectReason::CancelledByPassenger => "cancelled_by_passenger",
            RejectReason::TaxiFailed => "taxi_failed",
            RejectReason::RetriesExhausted => "retries_exhausted",
            RejectReason::QueueShed => "queue_shed",
            RejectReason::QueueRejected => "queue_rejected",
            RejectReason::DrainRejected => "drain_rejected",
        }
    }

    /// Index into [`RejectReason::ALL`] (and the counter array).
    pub fn index(self) -> usize {
        match self {
            RejectReason::EmptyFleet => 0,
            RejectReason::UnreachableOd => 1,
            RejectReason::InfeasibleDeadline => 2,
            RejectReason::ZeroCapacity => 3,
            RejectReason::NoFeasibleInsertion => 4,
            RejectReason::OfflineExpired => 5,
            RejectReason::CancelledByPassenger => 6,
            RejectReason::TaxiFailed => 7,
            RejectReason::RetriesExhausted => 8,
            RejectReason::QueueShed => 9,
            RejectReason::QueueRejected => 10,
            RejectReason::DrainRejected => 11,
        }
    }

    /// Inverse of [`RejectReason::label`].
    pub fn from_label(s: &str) -> Option<RejectReason> {
        RejectReason::ALL.iter().copied().find(|r| r.label() == s)
    }
}

/// One dispatch-lifecycle event. `t` is always simulation time in
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request entered the system.
    Arrival {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Whether this is an offline (encounter-based) request.
        offline: bool,
    },
    /// The dispatcher evaluated a request (whatever the outcome).
    Dispatch {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Candidate taxis examined.
        candidates: u32,
        /// Insertion instances that satisfied all constraints.
        feasible: u32,
    },
    /// A request was assigned to a taxi.
    Commit {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Winning taxi.
        taxi: u32,
        /// Extra seconds the shared ride adds over the direct drive.
        detour_s: f64,
        /// Stops in the taxi's schedule after insertion.
        schedule_len: u32,
    },
    /// A request was definitively rejected.
    Reject {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Classified cause.
        reason: RejectReason,
    },
    /// A taxi came within encounter radius of a waiting offline request.
    Encounter {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// The encountering taxi.
        taxi: u32,
    },
    /// A rider boarded.
    Pickup {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Serving taxi.
        taxi: u32,
        /// Seconds waited since release.
        wait_s: f64,
    },
    /// A rider was delivered.
    Dropoff {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Serving taxi.
        taxi: u32,
        /// Realized detour vs. the direct drive, seconds.
        detour_s: f64,
    },
    /// A taxi dropped out of service (injected breakdown).
    Breakdown {
        /// Simulation time (s).
        t: f64,
        /// The failed taxi.
        taxi: u32,
        /// Riders stranded by the failure (onboard + assigned).
        orphans: u32,
    },
    /// A rider withdrew a request before pickup (informational; the
    /// terminal accounting is the matching `reject` event).
    Cancel {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// Whether the request was on a committed schedule when
        /// cancelled (false: still waiting / pending offline).
        assigned: bool,
    },
    /// A time-windowed travel-time multiplier hit a road region.
    TrafficShift {
        /// Simulation time (s) the shift starts.
        t: f64,
        /// Center node of the affected region.
        node: u32,
        /// Region radius, metres.
        radius_m: f64,
        /// Travel-time multiplier: hops inside the region take
        /// `factor ×` their base time while the window is active.
        factor: f64,
        /// Shift window length, seconds.
        duration_s: f64,
    },
    /// A committed schedule was repaired after a disruption.
    Reroute {
        /// Simulation time (s).
        t: f64,
        /// The repaired taxi.
        taxi: u32,
        /// Onboard riders whose deadlines were renegotiated.
        renegotiated: u32,
        /// Unpicked riders dropped from the plan (re-enqueued).
        dropped: u32,
    },
    /// A recovery re-dispatch attempt for an orphaned rider.
    Redispatch {
        /// Simulation time (s).
        t: f64,
        /// Request id.
        req: u32,
        /// 1-based attempt number within the retry budget.
        attempt: u32,
        /// Whether the attempt found a taxi.
        ok: bool,
    },
    /// A `validate_world` check failed (healthy runs emit none).
    InvariantViolation {
        /// Simulation time (s).
        t: f64,
        /// Name of the violated invariant check.
        check: String,
    },
    /// A state snapshot was written (persistence meta event).
    ///
    /// Meta events are emitted through [`crate::Obs::emit_meta`]: they
    /// reach only sinks that opt in via `EventSink::wants_meta` and are
    /// never counted in the deterministic aggregates — checkpoint cadence
    /// is an operational concern, and a resumed run's canonical trace
    /// must stay byte-identical to the uninterrupted run's.
    Checkpoint {
        /// Simulation time (s) at the checkpoint boundary.
        t: f64,
        /// Event-loop step the snapshot captures.
        step: u64,
        /// Encoded snapshot size, bytes.
        bytes: u64,
    },
    /// A run resumed from persisted state (persistence meta event; see
    /// [`Event::Checkpoint`] for the meta-path rules).
    Restore {
        /// Simulation time (s) reached after WAL replay.
        t: f64,
        /// Event-loop step execution resumes from.
        step: u64,
        /// Step of the snapshot the recovery loaded.
        snapshot_step: u64,
        /// WAL records replayed on top of the snapshot.
        wal_replayed: u64,
    },
    /// A storage operation failed mid-run (persistence meta event; see
    /// [`Event::Checkpoint`] for the meta-path rules). What happens next
    /// is the durability policy's call: strict runs stop with a typed
    /// exit, degrade runs quarantine the state dir and keep serving.
    StorageFault {
        /// Simulation time (s) when the fault surfaced.
        t: f64,
        /// Event-loop step at the fault.
        step: u64,
        /// The failing operation (`wal_append`, `wal_sync`,
        /// `snapshot_write`, ...).
        op: &'static str,
        /// Fault classification (`no_space`, `sync_lost`, `corruption`,
        /// `transient`).
        class: &'static str,
    },
    /// The degrade durability policy fired: persistence is off for the
    /// rest of the run and the state dir was quarantined for post-mortem
    /// (persistence meta event).
    DurabilityDegraded {
        /// Simulation time (s) when the policy fired.
        t: f64,
        /// Event-loop step at the fault.
        step: u64,
        /// Whether the bad state-dir generation was successfully moved
        /// aside (false: the rename itself failed; the dir is untouched).
        quarantined: bool,
    },
    /// The feed transport failed mid-stream (meta event): disconnect,
    /// malformed framing or an oversized line. The serve loop syncs
    /// persistence and exits with the feed-fault code so a supervisor
    /// can restart and resume.
    FeedFault {
        /// Simulation time (s) when the feed broke.
        t: f64,
        /// 1-based feed line at which the fault surfaced.
        line: u64,
        /// Fault kind (`disconnect`, `oversized_line`, `io`).
        kind: &'static str,
    },
}

/// Event kinds, for counting. Order matches serialization labels; the
/// persistence meta kinds sit at the end so pre-existing indices are
/// stable.
pub const EVENT_KINDS: [&str; 18] = [
    "arrival",
    "dispatch",
    "commit",
    "reject",
    "encounter",
    "pickup",
    "dropoff",
    "breakdown",
    "cancel",
    "traffic_shift",
    "reroute",
    "redispatch",
    "invariant_violation",
    "checkpoint",
    "restore",
    "storage_fault",
    "durability_degraded",
    "feed_fault",
];

impl Event {
    /// Simulation timestamp of the event.
    pub fn t(&self) -> f64 {
        match self {
            Event::Arrival { t, .. }
            | Event::Dispatch { t, .. }
            | Event::Commit { t, .. }
            | Event::Reject { t, .. }
            | Event::Encounter { t, .. }
            | Event::Pickup { t, .. }
            | Event::Dropoff { t, .. }
            | Event::Breakdown { t, .. }
            | Event::Cancel { t, .. }
            | Event::TrafficShift { t, .. }
            | Event::Reroute { t, .. }
            | Event::Redispatch { t, .. }
            | Event::InvariantViolation { t, .. }
            | Event::Checkpoint { t, .. }
            | Event::Restore { t, .. }
            | Event::StorageFault { t, .. }
            | Event::DurabilityDegraded { t, .. }
            | Event::FeedFault { t, .. } => *t,
        }
    }

    /// Index into [`EVENT_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Arrival { .. } => 0,
            Event::Dispatch { .. } => 1,
            Event::Commit { .. } => 2,
            Event::Reject { .. } => 3,
            Event::Encounter { .. } => 4,
            Event::Pickup { .. } => 5,
            Event::Dropoff { .. } => 6,
            Event::Breakdown { .. } => 7,
            Event::Cancel { .. } => 8,
            Event::TrafficShift { .. } => 9,
            Event::Reroute { .. } => 10,
            Event::Redispatch { .. } => 11,
            Event::InvariantViolation { .. } => 12,
            Event::Checkpoint { .. } => 13,
            Event::Restore { .. } => 14,
            Event::StorageFault { .. } => 15,
            Event::DurabilityDegraded { .. } => 16,
            Event::FeedFault { .. } => 17,
        }
    }

    /// Whether this is a persistence/fault meta event: emitted through
    /// the meta path only, never part of the canonical deterministic
    /// stream or aggregates.
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            Event::Checkpoint { .. }
                | Event::Restore { .. }
                | Event::StorageFault { .. }
                | Event::DurabilityDegraded { .. }
                | Event::FeedFault { .. }
        )
    }

    /// Encodes the event as one JSONL line (no trailing newline), with
    /// a fixed key order per kind so the byte stream is canonical.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Event::Arrival { t, req, offline } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"arrival","t":{},"req":{req},"offline":{offline}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Dispatch { t, req, candidates, feasible } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"dispatch","t":{},"req":{req},"candidates":{candidates},"feasible":{feasible}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Commit { t, req, taxi, detour_s, schedule_len } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"commit","t":{},"req":{req},"taxi":{taxi},"detour_s":{},"schedule_len":{schedule_len}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*detour_s)
                );
            }
            Event::Reject { t, req, reason } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"reject","t":{},"req":{req},"reason":"{}"}}"#,
                    fmt_f64(*t),
                    reason.label()
                );
            }
            Event::Encounter { t, req, taxi } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"encounter","t":{},"req":{req},"taxi":{taxi}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Pickup { t, req, taxi, wait_s } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"pickup","t":{},"req":{req},"taxi":{taxi},"wait_s":{}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*wait_s)
                );
            }
            Event::Dropoff { t, req, taxi, detour_s } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"dropoff","t":{},"req":{req},"taxi":{taxi},"detour_s":{}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*detour_s)
                );
            }
            Event::Breakdown { t, taxi, orphans } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"breakdown","t":{},"taxi":{taxi},"orphans":{orphans}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Cancel { t, req, assigned } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"cancel","t":{},"req":{req},"assigned":{assigned}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::TrafficShift { t, node, radius_m, factor, duration_s } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"traffic_shift","t":{},"node":{node},"radius_m":{},"factor":{},"duration_s":{}}}"#,
                    fmt_f64(*t),
                    fmt_f64(*radius_m),
                    fmt_f64(*factor),
                    fmt_f64(*duration_s)
                );
            }
            Event::Reroute { t, taxi, renegotiated, dropped } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"reroute","t":{},"taxi":{taxi},"renegotiated":{renegotiated},"dropped":{dropped}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Redispatch { t, req, attempt, ok } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"redispatch","t":{},"req":{req},"attempt":{attempt},"ok":{ok}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::InvariantViolation { t, check } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"invariant_violation","t":{},"check":"{check}"}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Checkpoint { t, step, bytes } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"checkpoint","t":{},"step":{step},"bytes":{bytes}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::Restore { t, step, snapshot_step, wal_replayed } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"restore","t":{},"step":{step},"snapshot_step":{snapshot_step},"wal_replayed":{wal_replayed}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::StorageFault { t, step, op, class } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"storage_fault","t":{},"step":{step},"op":"{op}","class":"{class}"}}"#,
                    fmt_f64(*t)
                );
            }
            Event::DurabilityDegraded { t, step, quarantined } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"durability_degraded","t":{},"step":{step},"quarantined":{quarantined}}}"#,
                    fmt_f64(*t)
                );
            }
            Event::FeedFault { t, line, kind } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"feed_fault","t":{},"line":{line},"kind":"{kind}"}}"#,
                    fmt_f64(*t)
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_is_valid_json_with_expected_keys() {
        let evs = [
            Event::Arrival { t: 1.5, req: 7, offline: true },
            Event::Dispatch { t: 1.5, req: 7, candidates: 12, feasible: 3 },
            Event::Commit { t: 1.5, req: 7, taxi: 2, detour_s: 30.25, schedule_len: 4 },
            Event::Reject { t: 2.0, req: 8, reason: RejectReason::UnreachableOd },
            Event::Encounter { t: 3.0, req: 9, taxi: 1 },
            Event::Pickup { t: 4.0, req: 7, taxi: 2, wait_s: 61.5 },
            Event::Dropoff { t: 5.0, req: 7, taxi: 2, detour_s: 30.25 },
            Event::Breakdown { t: 6.0, taxi: 2, orphans: 3 },
            Event::Cancel { t: 6.5, req: 10, assigned: true },
            Event::TrafficShift {
                t: 7.0,
                node: 42,
                radius_m: 600.0,
                factor: 0.5,
                duration_s: 900.0,
            },
            Event::Reroute { t: 7.5, taxi: 1, renegotiated: 1, dropped: 2 },
            Event::Redispatch { t: 8.0, req: 9, attempt: 2, ok: false },
            Event::InvariantViolation { t: 9.0, check: "seat_accounting".to_string() },
            Event::Checkpoint { t: 10.0, step: 512, bytes: 20480 },
            Event::Restore { t: 10.5, step: 700, snapshot_step: 512, wal_replayed: 188 },
            Event::StorageFault { t: 11.0, step: 710, op: "wal_append", class: "no_space" },
            Event::DurabilityDegraded { t: 11.0, step: 710, quarantined: true },
            Event::FeedFault { t: 11.5, line: 4021, kind: "disconnect" },
        ];
        for (i, ev) in evs.iter().enumerate() {
            let line = ev.to_jsonl();
            let v = json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some(EVENT_KINDS[i]));
            assert_eq!(v.get("t").and_then(|v| v.as_num()), Some(ev.t()));
            assert_eq!(ev.kind_index(), i);
        }
    }

    #[test]
    fn reject_reason_labels_round_trip() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(RejectReason::from_label(r.label()), Some(*r));
        }
        assert_eq!(RejectReason::from_label("nope"), None);
    }
}
