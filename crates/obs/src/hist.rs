//! Two observation containers with different trade-offs:
//!
//! * [`Series`] — exact values, single-writer, cheap amortized
//!   quantiles via a lazily rebuilt sorted cache. Used for the
//!   deterministic outcome metrics (candidates, waiting, detour) where
//!   bit-exact statistics matter.
//! * [`Histogram`] — log-bucketed atomic counters, safe to record into
//!   from any worker thread without locks. Used for wall-clock stage
//!   timings where approximate quantiles are fine and contention is not.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simple accumulator for a scalar metric with exact quantiles.
///
/// `quantile` used to clone and sort the full vector on every call;
/// it now keeps a sorted copy that is invalidated on `push` and rebuilt
/// at most once per flush of observations, so k quantile queries after
/// n pushes cost one sort instead of k.
#[derive(Debug, Clone, Default)]
pub struct Series {
    values: Vec<f64>,
    /// Lazily rebuilt sorted view; emptied whenever `values` grows.
    sorted: RefCell<Vec<f64>>,
}

impl Series {
    /// Adds an observation (invalidates the sorted cache).
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted.borrow_mut().clear();
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (nearest-rank; 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sorted.borrow_mut();
        if sorted.len() != self.values.len() {
            sorted.clear();
            sorted.extend_from_slice(&self.values);
            sorted.sort_by(|a, b| a.total_cmp(b));
        }
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.quantile(0.0)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.quantile(1.0)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The raw observations in push order (checkpointing: a series is
    /// restored value-for-value so bit-exact quantiles survive a warm
    /// restart).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Rebuilds a series from observations previously taken from
    /// [`Series::values`], preserving push order.
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values, sorted: RefCell::new(Vec::new()) }
    }
}

/// Buckets per octave (factor-of-two range); 4 gives ~19% relative
/// quantile error, plenty for stage timings.
const SUB: f64 = 4.0;
/// log2 of the smallest representable value (~1 ns when recording
/// seconds). Everything smaller lands in bucket 0.
const MIN_EXP: f64 = -30.0;
/// 256 buckets span 2^-30 .. 2^34 — nanoseconds to centuries.
const BUCKETS: usize = 256;

/// Lock-free log-bucketed histogram of non-negative f64 observations.
///
/// `record` is wait-free (one relaxed `fetch_add` each on a bucket and
/// two scalar accumulators); quantile reads race benignly with writers.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in fixed-point nanounits (u64 nanoseconds when recording
    /// seconds) so it can be atomic without CAS loops.
    sum_nanos: AtomicU64,
    /// Max as f64 bits; monotone CAS.
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_bits: AtomicU64::new(0), // 0.0f64.to_bits() == 0
        }
    }

    fn index(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let raw = (v.log2() - MIN_EXP) * SUB;
        raw.max(0.0).min((BUCKETS - 1) as f64) as usize
    }

    /// Midpoint value represented by bucket `i`.
    fn representative(i: usize) -> f64 {
        2f64.powf(MIN_EXP + (i as f64 + 0.5) / SUB)
    }

    /// Records one non-negative observation.
    #[inline]
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        let bits = v.to_bits(); // non-negative f64 bits order like the values
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while bits > cur {
            match self.max_bits.compare_exchange_weak(
                cur,
                bits,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (resolution 1e-9).
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Largest recorded observation.
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Approximate `q`-quantile: the representative value of the bucket
    /// holding the nearest-rank observation. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        Self::quantile_of(&counts, q)
    }

    fn quantile_of(counts: &[u64], q: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::representative(i);
            }
        }
        Self::representative(BUCKETS - 1)
    }

    /// Freezes the current bucket counts, for later interval-delta
    /// queries (steady-state reports subtract two snapshots to get the
    /// distribution of just the last interval).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Observations recorded since `prev` was taken.
    pub fn count_since(&self, prev: &HistogramSnapshot) -> u64 {
        self.count().saturating_sub(prev.counts.iter().sum())
    }

    /// Approximate `q`-quantile over only the observations recorded
    /// since `prev` was taken (0 when the interval is empty). Buckets
    /// are monotone, so the delta is a well-formed histogram.
    pub fn quantile_since(&self, prev: &HistogramSnapshot, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .zip(&prev.counts)
            .map(|(b, &p)| b.load(Ordering::Relaxed).saturating_sub(p))
            .collect();
        Self::quantile_of(&counts, q)
    }
}

/// Frozen bucket counts of a [`Histogram`] ([`Histogram::snapshot`]).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={}, sum={:.6}, max={:.6})", self.count(), self.sum(), self.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn series_statistics_match_previous_behavior() {
        let mut s = Series::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn series_cache_invalidates_on_push() {
        let mut s = Series::default();
        s.push(10.0);
        assert_eq!(s.quantile(0.5), 10.0); // builds the cache
        s.push(1.0); // must invalidate it
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 10.0);
        // Repeated queries reuse the cache (covered by behavior, not
        // timing: a stale cache would return 10.0 for q=0 above).
    }

    #[test]
    fn histogram_quantiles_are_within_bucket_error() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-3);
        assert_eq!(h.max(), 1.0);
        let p50 = h.quantile(0.5);
        // One bucket is a factor of 2^(1/4) ≈ 1.19; the representative
        // midpoint adds another half bucket.
        assert!(p50 > 0.5 / 1.4 && p50 < 0.5 * 1.4, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 0.99 / 1.4 && p99 < 0.99 * 1.4, "p99 = {p99}");
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_snapshot_deltas_cover_only_the_interval() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(0.001); // 1 ms
        }
        let snap = h.snapshot();
        assert_eq!(h.count_since(&snap), 0);
        assert_eq!(h.quantile_since(&snap, 0.95), 0.0);
        for _ in 0..50 {
            h.record(1.0); // 1 s, only in the second interval
        }
        assert_eq!(h.count_since(&snap), 50);
        let p95 = h.quantile_since(&snap, 0.95);
        assert!(p95 > 1.0 / 1.4 && p95 < 1.4, "interval p95 = {p95}");
        // The cumulative quantile still sees the old mass.
        assert!(h.quantile(0.5) < 0.01);
    }

    #[test]
    fn histogram_concurrent_records_are_counted() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        h.record(1e-6 * (1 + i % 100) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
    }
}
