//! Event sinks: where the canonical JSONL stream goes.

use crate::event::Event;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Consumes the ordered event stream. Implementations receive both the
/// typed event and its canonical JSONL encoding (rendered once by the
/// bus) so writers don't re-serialize.
pub trait EventSink: Send {
    /// Called for every emitted event, in commit order.
    fn on_event(&mut self, ev: &Event, line: &str);
    /// Called once at end of run.
    fn flush(&mut self) {}
    /// Whether this sink also wants persistence meta events
    /// (checkpoint/restore). Defaults to `false` so the canonical trace
    /// stays byte-identical whether or not a run checkpoints — meta
    /// events reach only sinks that opt in.
    fn wants_meta(&self) -> bool {
        false
    }
}

/// Writes one JSONL line per event to any `io::Write` (file, stdout,
/// in-memory buffer).
pub struct JsonlSink<W: Write + Send> {
    w: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Callers wanting buffering should pass a
    /// `BufWriter` themselves.
    pub fn new(w: W) -> Self {
        Self { w }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn on_event(&mut self, _ev: &Event, line: &str) {
        // Telemetry must never take the sim down; drop on I/O error.
        let _ = self.w.write_all(line.as_bytes());
        let _ = self.w.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Captures the JSONL stream into a shared string — used by the
/// determinism tests to compare byte-identical traces across worker
/// counts without touching the filesystem.
pub struct MemorySink {
    buf: Arc<Mutex<String>>,
    meta: bool,
}

impl MemorySink {
    /// Returns the sink and a handle to the buffer it fills.
    pub fn new() -> (Self, Arc<Mutex<String>>) {
        let buf = Arc::new(Mutex::new(String::new()));
        (Self { buf: buf.clone(), meta: false }, buf)
    }

    /// Like [`MemorySink::new`] but also receiving persistence meta
    /// events (checkpoint/restore) — used by tests that assert on the
    /// meta stream.
    pub fn new_with_meta() -> (Self, Arc<Mutex<String>>) {
        let buf = Arc::new(Mutex::new(String::new()));
        (Self { buf: buf.clone(), meta: true }, buf)
    }
}

impl EventSink for MemorySink {
    fn on_event(&mut self, _ev: &Event, line: &str) {
        let mut buf = self.buf.lock().expect("memory sink poisoned");
        buf.push_str(line);
        buf.push('\n');
    }

    fn wants_meta(&self) -> bool {
        self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            let ev = Event::Arrival { t: 0.0, req: 1, offline: false };
            let line = ev.to_jsonl();
            sink.on_event(&ev, &line);
            sink.flush();
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "{\"ev\":\"arrival\",\"t\":0,\"req\":1,\"offline\":false}\n");
    }

    #[test]
    fn memory_sink_accumulates() {
        let (mut sink, buf) = MemorySink::new();
        let ev = Event::Encounter { t: 1.0, req: 2, taxi: 3 };
        let line = ev.to_jsonl();
        sink.on_event(&ev, &line);
        sink.on_event(&ev, &line);
        assert_eq!(buf.lock().unwrap().lines().count(), 2);
    }
}
