//! Validators for the documented telemetry schema (see DESIGN.md).
//!
//! Used by the `obs_check` CLI binary and the CI observability job to
//! confirm that an emitted trace/summary pair matches the contract
//! before it is archived as a perf-trajectory artifact.

use crate::event::{RejectReason, EVENT_KINDS};
use crate::json::{self, Value};
use crate::span::Stage;
use crate::{STEADY_SCHEMA, SUMMARY_SCHEMA};

/// Field spec: name, expected type.
#[derive(Clone, Copy)]
enum Ty {
    Num,
    Bool,
    Str,
    Obj,
}

fn check_fields(v: &Value, required: &[(&str, Ty)], context: &str) -> Result<(), String> {
    let Some(fields) = v.as_obj() else {
        return Err(format!("{context}: not an object"));
    };
    for (name, ty) in required {
        let Some(val) = v.get(name) else {
            return Err(format!("{context}: missing field \"{name}\""));
        };
        let ok = match ty {
            Ty::Num => matches!(val, Value::Num(_)),
            Ty::Bool => matches!(val, Value::Bool(_)),
            Ty::Str => matches!(val, Value::Str(_)),
            Ty::Obj => matches!(val, Value::Obj(_)),
        };
        if !ok {
            return Err(format!("{context}: field \"{name}\" has wrong type"));
        }
    }
    // No undocumented fields: the stream is a contract, not a dumping
    // ground. (Additions require a schema bump.)
    for (k, _) in fields {
        if !required.iter().any(|(name, _)| name == k) {
            return Err(format!("{context}: unexpected field \"{k}\""));
        }
    }
    Ok(())
}

/// Validates one JSONL trace line against the event schema.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let kind = v
        .get("ev")
        .and_then(|k| k.as_str())
        .ok_or_else(|| "missing string field \"ev\"".to_string())?
        .to_string();
    match kind.as_str() {
        "arrival" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("req", Ty::Num), ("offline", Ty::Bool)],
            "arrival",
        ),
        "dispatch" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("req", Ty::Num),
                ("candidates", Ty::Num),
                ("feasible", Ty::Num),
            ],
            "dispatch",
        ),
        "commit" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("req", Ty::Num),
                ("taxi", Ty::Num),
                ("detour_s", Ty::Num),
                ("schedule_len", Ty::Num),
            ],
            "commit",
        ),
        "reject" => {
            check_fields(
                &v,
                &[("ev", Ty::Str), ("t", Ty::Num), ("req", Ty::Num), ("reason", Ty::Str)],
                "reject",
            )?;
            let reason = v.get("reason").and_then(|r| r.as_str()).unwrap_or("");
            if RejectReason::from_label(reason).is_none() {
                return Err(format!("reject: unknown reason \"{reason}\""));
            }
            Ok(())
        }
        "encounter" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("req", Ty::Num), ("taxi", Ty::Num)],
            "encounter",
        ),
        "pickup" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("req", Ty::Num),
                ("taxi", Ty::Num),
                ("wait_s", Ty::Num),
            ],
            "pickup",
        ),
        "dropoff" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("req", Ty::Num),
                ("taxi", Ty::Num),
                ("detour_s", Ty::Num),
            ],
            "dropoff",
        ),
        "breakdown" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("taxi", Ty::Num), ("orphans", Ty::Num)],
            "breakdown",
        ),
        "cancel" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("req", Ty::Num), ("assigned", Ty::Bool)],
            "cancel",
        ),
        "traffic_shift" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("node", Ty::Num),
                ("radius_m", Ty::Num),
                ("factor", Ty::Num),
                ("duration_s", Ty::Num),
            ],
            "traffic_shift",
        ),
        "reroute" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("taxi", Ty::Num),
                ("renegotiated", Ty::Num),
                ("dropped", Ty::Num),
            ],
            "reroute",
        ),
        "redispatch" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("req", Ty::Num),
                ("attempt", Ty::Num),
                ("ok", Ty::Bool),
            ],
            "redispatch",
        ),
        "invariant_violation" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("check", Ty::Str)],
            "invariant_violation",
        ),
        "checkpoint" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("step", Ty::Num), ("bytes", Ty::Num)],
            "checkpoint",
        ),
        "restore" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("step", Ty::Num),
                ("snapshot_step", Ty::Num),
                ("wal_replayed", Ty::Num),
            ],
            "restore",
        ),
        "storage_fault" => check_fields(
            &v,
            &[
                ("ev", Ty::Str),
                ("t", Ty::Num),
                ("step", Ty::Num),
                ("op", Ty::Str),
                ("class", Ty::Str),
            ],
            "storage_fault",
        ),
        "durability_degraded" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("step", Ty::Num), ("quarantined", Ty::Bool)],
            "durability_degraded",
        ),
        "feed_fault" => check_fields(
            &v,
            &[("ev", Ty::Str), ("t", Ty::Num), ("line", Ty::Num), ("kind", Ty::Str)],
            "feed_fault",
        ),
        other => Err(format!("unknown event kind \"{other}\"")),
    }
}

/// Validates a whole JSONL trace; returns the number of valid lines.
/// Blank lines are not allowed (the writer never produces them).
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    let mut last_t = f64::NEG_INFINITY;
    for (i, line) in text.lines().enumerate() {
        validate_event_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        // Sim-time stamps must be non-decreasing: events are emitted in
        // commit order.
        let v = json::parse(line).expect("validated above");
        let t = v.get("t").and_then(|t| t.as_num()).expect("validated above");
        if t < last_t {
            return Err(format!("line {}: sim time went backwards ({t} < {last_t})", i + 1));
        }
        last_t = t;
        n += 1;
    }
    Ok(n)
}

fn require_num(v: &Value, ctx: &str, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|n| n.as_num())
        .ok_or_else(|| format!("{ctx}: missing numeric field \"{key}\""))
}

fn require_stat_block(v: &Value, key: &str) -> Result<(), String> {
    let block = v.get(key).ok_or_else(|| format!("missing stat block \"{key}\""))?;
    for f in ["count", "mean", "p50", "p95", "p99", "min", "max"] {
        require_num(block, key, f)?;
    }
    Ok(())
}

fn require_hist_block(v: &Value, key: &str, unit: &str) -> Result<(), String> {
    let block = v.get(key).ok_or_else(|| format!("missing histogram block \"{key}\""))?;
    require_num(block, key, "count")?;
    require_num(block, key, "total_s")?;
    for q in ["p50", "p95", "p99", "max"] {
        let field = format!("{q}_{unit}");
        require_num(block, key, &field)?;
    }
    Ok(())
}

/// Validates a summary JSON document against the documented layout.
pub fn validate_summary(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some(SUMMARY_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema \"{other}\"")),
        None => return Err("missing \"schema\"".to_string()),
    }
    let run = v.get("run").ok_or("missing \"run\"")?;
    if run.get("scheme").and_then(|s| s.as_str()).is_none() {
        return Err("run: missing string field \"scheme\"".to_string());
    }
    for f in ["taxis", "requests", "offline"] {
        require_num(run, "run", f)?;
    }
    let events = v.get("events").ok_or("missing \"events\"")?;
    for kind in EVENT_KINDS {
        require_num(events, "events", kind)?;
    }
    let rej = v.get("rejections").ok_or("missing \"rejections\"")?;
    let mut total = 0.0;
    for reason in RejectReason::ALL {
        total += require_num(rej, "rejections", reason.label())?;
    }
    if require_num(rej, "rejections", "total")? != total {
        return Err("rejections: total does not equal the sum of reasons".to_string());
    }
    if require_num(events, "events", "reject")? != total {
        return Err("events.reject does not match rejections.total".to_string());
    }
    for block in ["candidates", "feasible", "waiting_s", "detour_s"] {
        require_stat_block(&v, block)?;
    }
    let prof = v.get("profiling").ok_or("missing \"profiling\"")?;
    require_num(prof, "profiling", "parallelism")?;
    let stages = prof.get("stages").ok_or("profiling: missing \"stages\"")?;
    for stage in Stage::ALL {
        require_hist_block(stages, stage.label(), "us")?;
    }
    let counters = prof.get("counters").ok_or("profiling: missing \"counters\"")?;
    for f in [
        "filter_partitions_considered",
        "filter_partitions_kept",
        "insertions_attempted",
        "insertions_feasible",
    ] {
        require_num(counters, "counters", f)?;
    }
    let cache = prof.get("path_cache").ok_or("profiling: missing \"path_cache\"")?;
    for f in ["hits", "misses", "evictions", "hit_ratio"] {
        require_num(cache, "path_cache", f)?;
    }
    let oracle = prof.get("oracle").ok_or("profiling: missing \"oracle\"")?;
    for f in ["vector_hits", "memo_hits", "searches", "pin_computes", "evictions", "hit_ratio"] {
        require_num(oracle, "oracle", f)?;
    }
    let ch = prof.get("ch").ok_or("profiling: missing \"ch\"")?;
    for f in ["p2p_queries", "bucket_sweeps", "bucket_sources", "shortcuts"] {
        require_num(ch, "ch", f)?;
    }
    let cch = prof.get("cch").ok_or("profiling: missing \"cch\"")?;
    for f in ["p2p_queries", "bucket_sweeps", "bucket_sources", "customizations", "fill_arcs"] {
        require_num(cch, "cch", f)?;
    }
    let workers = prof.get("workers").ok_or("profiling: missing \"workers\"")?;
    require_num(workers, "workers", "batches")?;
    require_num(workers, "workers", "batched_requests")?;
    require_num(workers, "workers", "degraded_batches")?;
    match (workers.get("items"), workers.get("utilization")) {
        (Some(Value::Arr(items)), Some(Value::Arr(util))) if items.len() == util.len() => {}
        _ => return Err("workers: items/utilization must be equal-length arrays".to_string()),
    }
    let persist = prof.get("persistence").ok_or("profiling: missing \"persistence\"")?;
    for f in ["checkpoints", "restores", "wal_records", "wal_bytes"] {
        require_num(persist, "persistence", f)?;
    }
    require_hist_block(persist, "checkpoint_bytes", "b")?;
    require_hist_block(persist, "checkpoint_write_ms", "ms")?;
    let faults = prof.get("faults").ok_or("profiling: missing \"faults\"")?;
    for f in ["wal", "snapshot", "feed", "dir_sync_unsupported", "quarantines"] {
        require_num(faults, "faults", f)?;
    }
    let lap = prof.get("lap").ok_or("profiling: missing \"lap\"")?;
    for f in ["solves", "rows", "cols", "assigned", "augmentations", "relaxations", "skipped_rows"]
    {
        require_num(lap, "lap", f)?;
    }
    let dtree = prof.get("dtree").ok_or("profiling: missing \"dtree\"")?;
    for f in [
        "scores",
        "rebuilds",
        "advances",
        "commits",
        "removes",
        "retimes",
        "legs_reused",
        "legs_filled",
        "memo_reuses",
        "memo_fills",
    ] {
        require_num(dtree, "dtree", f)?;
    }
    require_hist_block(prof, "response_ms", "ms")?;
    Ok(())
}

/// Validates one steady-state report JSONL line.
pub fn validate_steady_line(line: &str) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some(STEADY_SCHEMA) => {}
        Some(other) => return Err(format!("unknown steady schema \"{other}\"")),
        None => return Err("missing \"schema\"".to_string()),
    }
    check_fields(
        &v,
        &[
            ("schema", Ty::Str),
            ("t", Ty::Num),
            ("interval_s", Ty::Num),
            ("arrivals", Ty::Num),
            ("commits", Ty::Num),
            ("rejects", Ty::Num),
            ("shed", Ty::Num),
            ("queue_peak", Ty::Num),
            ("ingested", Ty::Num),
            ("steps", Ty::Num),
            ("stage_p95_us", Ty::Obj),
            ("rss_bytes", Ty::Num),
        ],
        "steady",
    )?;
    let stages = v.get("stage_p95_us").expect("checked above");
    for stage in Stage::ALL {
        require_num(stages, "stage_p95_us", stage.label())?;
    }
    Ok(())
}

/// Validates a whole steady-state JSONL stream: every line against
/// [`validate_steady_line`], virtual time non-decreasing, the
/// `ingested`/`steps` gauges monotone. Returns the line count.
pub fn validate_steady(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    let mut last_t = f64::NEG_INFINITY;
    let mut last_ingested = 0.0f64;
    let mut last_steps = 0.0f64;
    for (i, line) in text.lines().enumerate() {
        validate_steady_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let v = json::parse(line).expect("validated above");
        let t = v.get("t").and_then(|t| t.as_num()).expect("validated above");
        if t < last_t {
            return Err(format!("line {}: virtual time went backwards ({t} < {last_t})", i + 1));
        }
        last_t = t;
        for (key, last) in [("ingested", &mut last_ingested), ("steps", &mut last_steps)] {
            let g = v.get(key).and_then(|g| g.as_num()).expect("validated above");
            if g < *last {
                return Err(format!("line {}: gauge \"{key}\" went backwards", i + 1));
            }
            *last = g;
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::steady::{SteadyExtra, SteadyTracker};
    use crate::{ExternalStats, Obs, RunInfo};

    #[test]
    fn writer_output_passes_event_validation() {
        let evs = [
            Event::Arrival { t: 0.0, req: 0, offline: false },
            Event::Dispatch { t: 0.0, req: 0, candidates: 3, feasible: 1 },
            Event::Commit { t: 0.0, req: 0, taxi: 5, detour_s: 1.25, schedule_len: 2 },
            Event::Reject { t: 1.0, req: 1, reason: RejectReason::ZeroCapacity },
            Event::Encounter { t: 2.0, req: 2, taxi: 5 },
            Event::Pickup { t: 3.0, req: 0, taxi: 5, wait_s: 3.0 },
            Event::Dropoff { t: 4.0, req: 0, taxi: 5, detour_s: 1.25 },
            Event::Breakdown { t: 5.0, taxi: 5, orphans: 2 },
            Event::Cancel { t: 5.5, req: 3, assigned: false },
            Event::TrafficShift {
                t: 6.0,
                node: 17,
                radius_m: 500.0,
                factor: 0.6,
                duration_s: 300.0,
            },
            Event::Reroute { t: 6.5, taxi: 5, renegotiated: 0, dropped: 1 },
            Event::Redispatch { t: 7.0, req: 2, attempt: 1, ok: true },
            Event::Reject { t: 7.0, req: 2, reason: RejectReason::TaxiFailed },
            Event::InvariantViolation { t: 8.0, check: "passenger_conservation".to_string() },
            Event::Checkpoint { t: 9.0, step: 128, bytes: 4096 },
            Event::Restore { t: 9.5, step: 150, snapshot_step: 128, wal_replayed: 22 },
            Event::StorageFault { t: 9.75, step: 160, op: "snapshot_write", class: "no_space" },
            Event::DurabilityDegraded { t: 9.75, step: 160, quarantined: true },
            Event::FeedFault { t: 10.0, line: 321, kind: "oversized_line" },
        ];
        let trace: String = evs.iter().map(|e| e.to_jsonl() + "\n").collect();
        assert_eq!(validate_trace(&trace), Ok(evs.len()));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "not json",
            r#"{"t":1}"#,                                              // no ev
            r#"{"ev":"warp","t":1}"#,                                  // unknown kind
            r#"{"ev":"arrival","t":1,"req":2}"#,                       // missing offline
            r#"{"ev":"arrival","t":1,"req":2,"offline":"yes"}"#,       // wrong type
            r#"{"ev":"arrival","t":1,"req":2,"offline":true,"x":1}"#,  // extra field
            r#"{"ev":"reject","t":1,"req":2,"reason":"cosmic_rays"}"#, // unknown reason
            r#"{"ev":"breakdown","t":1,"taxi":2}"#,                    // missing orphans
            r#"{"ev":"redispatch","t":1,"req":2,"attempt":1,"ok":1}"#, // wrong type
            r#"{"ev":"checkpoint","t":1,"step":2}"#,                   // missing bytes
            r#"{"ev":"restore","t":1,"step":2,"snapshot_step":"a","wal_replayed":0}"#, // wrong type
            r#"{"ev":"storage_fault","t":1,"step":2,"op":"wal_append"}"#, // missing class
            r#"{"ev":"durability_degraded","t":1,"step":2,"quarantined":"yes"}"#, // wrong type
            r#"{"ev":"feed_fault","t":1,"line":2}"#,                   // missing kind
        ] {
            assert!(validate_event_line(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn time_must_be_non_decreasing() {
        let good = "{\"ev\":\"encounter\",\"t\":1,\"req\":0,\"taxi\":0}\n\
                    {\"ev\":\"encounter\",\"t\":1,\"req\":1,\"taxi\":0}\n";
        assert_eq!(validate_trace(good), Ok(2));
        let bad = "{\"ev\":\"encounter\",\"t\":2,\"req\":0,\"taxi\":0}\n\
                   {\"ev\":\"encounter\",\"t\":1,\"req\":1,\"taxi\":0}\n";
        assert!(validate_trace(bad).is_err());
    }

    #[test]
    fn real_summary_passes_validation() {
        let obs = Obs::enabled();
        obs.set_run_info(RunInfo {
            scheme: "mt-share".into(),
            n_taxis: 2,
            n_requests: 3,
            n_offline: 0,
            parallelism: 1,
        });
        obs.emit(Event::Reject { t: 0.0, req: 0, reason: RejectReason::EmptyFleet });
        obs.set_external_stats(ExternalStats::default());
        let summary = obs.summary_json().unwrap();
        validate_summary(&summary).unwrap_or_else(|e| panic!("{e}\n{summary}"));
    }

    #[test]
    fn real_steady_stream_passes_validation() {
        let obs = Obs::enabled();
        let mut tracker = SteadyTracker::new(&obs);
        obs.emit(Event::Arrival { t: 1.0, req: 0, offline: false });
        let mut stream = String::new();
        let extra = SteadyExtra { queue_peak: 1, ingested: 1, steps: 2 };
        stream.push_str(&tracker.report_line(&obs, 10.0, &extra).unwrap());
        stream.push('\n');
        obs.emit(Event::Reject { t: 12.0, req: 0, reason: RejectReason::QueueShed });
        let extra = SteadyExtra { queue_peak: 0, ingested: 1, steps: 3 };
        stream.push_str(&tracker.report_line(&obs, 20.0, &extra).unwrap());
        stream.push('\n');
        assert_eq!(validate_steady(&stream), Ok(2), "{stream}");
    }

    #[test]
    fn malformed_steady_lines_are_rejected() {
        let obs = Obs::enabled();
        let mut tracker = SteadyTracker::new(&obs);
        let good = tracker.report_line(&obs, 5.0, &SteadyExtra::default()).unwrap();
        assert!(validate_steady_line(&good).is_ok());
        for bad in [
            "not json".to_string(),
            good.replace(crate::STEADY_SCHEMA, "mtshare-obs-steady/v0"), // wrong schema
            good.replace("\"arrivals\":0,", ""),                         // missing field
            good.replace("\"shed\":0", "\"shed\":0,\"extra\":1"),        // undocumented field
            good.replace("\"commit\":0", "\"commit\":\"fast\""),         // stage not a number
        ] {
            assert!(validate_steady_line(&bad).is_err(), "{bad} should fail");
        }
        // Time or gauges going backwards fail the stream check.
        let later = tracker.report_line(&obs, 9.0, &SteadyExtra::default()).unwrap();
        let backwards = format!("{later}\n{good}\n");
        assert!(validate_steady(&backwards).is_err());
        let regress = tracker
            .report_line(&obs, 11.0, &SteadyExtra { queue_peak: 0, ingested: 5, steps: 9 })
            .unwrap();
        let shrink = tracker
            .report_line(&obs, 12.0, &SteadyExtra { queue_peak: 0, ingested: 4, steps: 9 })
            .unwrap();
        assert!(validate_steady(&format!("{regress}\n{shrink}\n")).is_err());
    }

    #[test]
    fn inconsistent_summary_totals_are_rejected() {
        let obs = Obs::enabled();
        obs.emit(Event::Reject { t: 0.0, req: 0, reason: RejectReason::EmptyFleet });
        let summary = obs.summary_json().unwrap();
        // Forge the total.
        let forged = summary.replace("\"total\":1", "\"total\":2");
        assert!(validate_summary(&forged).is_err());
    }
}
