//! Minimal JSON support: a canonical number/string writer used by the
//! event and summary serializers, and a small recursive-descent parser
//! used by the schema checker and the determinism tests (which must
//! strip the `profiling` subtree before comparing summaries).
//!
//! Only what the subsystem needs — not a general-purpose JSON library.
//! Key order is preserved on parse and re-emit so that
//! parse → transform → write is byte-stable.

use std::fmt::Write as _;

/// Writes `v` in the canonical form used everywhere in this crate:
/// Rust's shortest round-trip representation, with non-finite values
/// mapped to `0` (JSON has no NaN/Inf; telemetry never produces them in
/// practice).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = String::new();
        let _ = write!(s, "{v}");
        s
    } else {
        "0".to_string()
    }
}

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object keys keep their source order so a
/// re-serialization after editing (e.g. stripping a key) is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; all counters fit in 2^53).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with source-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the numeric payload if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the fields if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Removes `key` from an object (top level only). No-op otherwise.
    pub fn strip_key(&mut self, key: &str) {
        if let Value::Obj(fields) = self {
            fields.retain(|(k, _)| k != key);
        }
    }

    /// Serializes back to compact JSON, preserving object key order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_f64(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset and a
/// short message.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for telemetry
                            // payloads; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf8".to_string())?;
                    let c = s.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_key_order_and_bytes() {
        let src = r#"{"b":1,"a":{"z":[1,2.5,true,null],"y":"q\"uote"},"c":-0.125}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn strip_key_removes_top_level_subtree() {
        let mut v = parse(r#"{"keep":1,"profiling":{"x":2},"tail":3}"#).unwrap();
        v.strip_key("profiling");
        assert_eq!(v.to_json(), r#"{"keep":1,"tail":3}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn fmt_f64_is_shortest_round_trip() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "0");
        let v: f64 = fmt_f64(1234.5678).parse().unwrap();
        assert_eq!(v, 1234.5678);
    }
}
