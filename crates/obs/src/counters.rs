//! Lock-free sharded counters.
//!
//! Dispatch workers (`mtshare-par` threads) bump these from inside the
//! speculative scoring hot path; a single contended cache line would
//! serialize them, so each counter is an array of cache-line-padded
//! shards and every thread hashes its `ThreadId` to pick one. Reads sum
//! all shards — they are rare (end of run / tests) and may race with
//! writers, which is fine for telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// One cache line per shard so concurrent writers never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Pad(AtomicU64);

/// A monotonically increasing counter safe to bump from any thread
/// without locking.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [Pad; SHARDS],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sums all shards. Monotone but not a linearizable snapshot.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.get())
    }
}

/// Hashes the current thread's id into a shard slot, cached per thread
/// so the hash is computed once.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            use std::hash::{Hash, Hasher};
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            idx = (h.finish() as usize) % SHARDS;
            slot.set(idx);
        }
        idx
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn adds_accumulate() {
        let c = ShardedCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
