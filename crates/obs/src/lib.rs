//! # mtshare-obs — structured observability for the mT-Share pipeline
//!
//! A zero-external-dependency telemetry subsystem: typed
//! dispatch-lifecycle events, lock-free sharded counters, log-bucketed
//! histograms, stage-span timers, and JSONL/summary sinks.
//!
//! ## Determinism contract
//!
//! The event stream and the summary (minus its `profiling` subtree)
//! are **byte-identical at any worker count**:
//!
//! * events carry *simulation* time only and are emitted exclusively
//!   from the sequential commit side of the simulator, in request
//!   order;
//! * everything measured in wall-clock (stage spans, response
//!   latencies) or dependent on thread scheduling (cache warming
//!   patterns, per-worker utilization, speculative-waste counters)
//!   lives under the summary's single `"profiling"` key, which
//!   equivalence checks strip before comparing.
//!
//! ## Overhead contract
//!
//! A disabled [`Obs`] (the default) is a `None` behind a pointer-sized
//! handle: every instrumentation call short-circuits on one branch, no
//! allocation, no atomics. The `batch_dispatch_64` bench budget is a
//! ≤ 2 % regression with telemetry disabled.

#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod hist;
pub mod json;
pub mod schema;
pub mod sink;
pub mod span;
pub mod steady;

pub use counters::ShardedCounter;
pub use event::{Event, RejectReason, EVENT_KINDS};
pub use hist::{Histogram, HistogramSnapshot, Series};
pub use sink::{EventSink, JsonlSink, MemorySink};
pub use span::Stage;
pub use steady::{rss_bytes, SteadyExtra, SteadyTracker, STEADY_SCHEMA};

use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Upper bound on tracked dispatch workers; higher worker ids fold
/// into the last slot.
const MAX_WORKERS: usize = 64;

/// Summary schema identifier, bumped on breaking layout changes.
/// v7: `profiling` gained a `faults` block (storage/feed fault counters,
/// quarantines, tolerated directory-fsync gaps) and three meta event
/// kinds (`storage_fault`, `durability_degraded`, `feed_fault`) joined
/// the event-count table.
/// v8: `profiling.stages` gained the `dtree_update` span and `profiling`
/// gained a `dtree` block (dynamic-tree scheduler sync/memoization
/// counters; all zero under `--scheduler dp`).
/// v9: `profiling.stages` gained the `customize` span and `profiling`
/// gained a `cch` block (customizable-hierarchy query/customization
/// counters; all zero unless `--router cch`).
pub const SUMMARY_SCHEMA: &str = "mtshare-obs-summary/v9";

/// Static facts about the run, reported verbatim in the summary.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Dispatch scheme label.
    pub scheme: String,
    /// Fleet size.
    pub n_taxis: usize,
    /// Total requests (online + offline).
    pub n_requests: usize,
    /// Offline requests among them.
    pub n_offline: usize,
    /// Dispatch worker threads (profiling-only: varies across
    /// equivalence runs).
    pub parallelism: usize,
}

/// End-of-run statistics pulled from the shared routing structures
/// (`PathCache`, `HotNodeOracle`). Plain integers so this crate does
/// not depend on `mtshare-routing`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExternalStats {
    /// Path-cache hits.
    pub cache_hits: u64,
    /// Path-cache misses.
    pub cache_misses: u64,
    /// Path-cache evictions.
    pub cache_evictions: u64,
    /// Oracle answers served from pinned hot-node vectors.
    pub oracle_vector_hits: u64,
    /// Oracle answers served from the memo table.
    pub oracle_memo_hits: u64,
    /// Oracle fallback graph searches.
    pub oracle_searches: u64,
    /// Hot-node vector computations (pin events).
    pub oracle_pin_computes: u64,
    /// Hot-node vectors freed (refcount reached zero).
    pub oracle_evictions: u64,
    /// Contraction-hierarchy point-to-point queries (0 under the
    /// bidirectional router).
    pub ch_p2p_queries: u64,
    /// Bucket many-to-one sweeps.
    pub ch_bucket_sweeps: u64,
    /// Total sources across all bucket sweeps.
    pub ch_bucket_sources: u64,
    /// Shortcut edges in the loaded/built hierarchy.
    pub ch_shortcuts: u64,
    /// Customizable-hierarchy point-to-point queries (0 unless
    /// `--router cch`).
    pub cch_p2p_queries: u64,
    /// Customizable-hierarchy bucket many-to-one sweeps.
    pub cch_bucket_sweeps: u64,
    /// Total sources across all CCH bucket sweeps.
    pub cch_bucket_sources: u64,
    /// Metric customizations performed (1 for the base metric, plus one
    /// per traffic-shift boundary crossed).
    pub cch_customizations: u64,
    /// Skeleton arcs the nested-dissection elimination added beyond the
    /// original edges (fill-in).
    pub cch_fill_arcs: u64,
    /// Dynamic-tree scheduler: insertion scorings served by trees.
    pub dtree_scores: u64,
    /// Dynamic-tree scheduler: full spine rebuilds.
    pub dtree_rebuilds: u64,
    /// Dynamic-tree scheduler: completed-stop advances.
    pub dtree_advances: u64,
    /// Dynamic-tree scheduler: winning-branch promotions (splice-ins).
    pub dtree_commits: u64,
    /// Dynamic-tree scheduler: request splice-outs (cancel/repair).
    pub dtree_removes: u64,
    /// Dynamic-tree scheduler: version refreshes after retiming.
    pub dtree_retimes: u64,
    /// Dynamic-tree scheduler: committed-leg costs served from spine
    /// caches.
    pub dtree_legs_reused: u64,
    /// Dynamic-tree scheduler: committed-leg costs filled by a fresh
    /// oracle query.
    pub dtree_legs_filled: u64,
    /// Dynamic-tree scheduler: per-evaluation memo hits (queries the
    /// insertion DP would have re-issued).
    pub dtree_memo_reuses: u64,
    /// Dynamic-tree scheduler: per-evaluation memo fills (distinct
    /// oracle queries).
    pub dtree_memo_fills: u64,
}

/// Deterministic aggregates, updated only from the commit side.
#[derive(Default)]
struct Aggregates {
    event_counts: [u64; EVENT_KINDS.len()],
    reject_counts: [u64; RejectReason::ALL.len()],
    candidates: Series,
    feasible: Series,
    waiting_s: Series,
    detour_s: Series,
}

impl Persist for Aggregates {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(&self.event_counts);
        enc.seq(&self.reject_counts);
        for series in [&self.candidates, &self.feasible, &self.waiting_s, &self.detour_s] {
            enc.seq(series.values());
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let events: Vec<u64> = dec.seq()?;
        let rejects: Vec<u64> = dec.seq()?;
        let event_counts: [u64; EVENT_KINDS.len()] = events
            .try_into()
            .map_err(|_| DecodeError::Invalid("event count array has wrong arity"))?;
        let reject_counts: [u64; RejectReason::ALL.len()] = rejects
            .try_into()
            .map_err(|_| DecodeError::Invalid("reject count array has wrong arity"))?;
        Ok(Self {
            event_counts,
            reject_counts,
            candidates: Series::from_values(dec.seq()?),
            feasible: Series::from_values(dec.seq()?),
            waiting_s: Series::from_values(dec.seq()?),
            detour_s: Series::from_values(dec.seq()?),
        })
    }
}

/// The shared telemetry state behind an enabled [`Obs`].
struct ObsCore {
    sinks: Mutex<Vec<Box<dyn EventSink>>>,
    agg: Mutex<Aggregates>,
    run: Mutex<RunInfo>,
    external: Mutex<ExternalStats>,
    // ---- thread-safe, worker-updated (profiling) ----
    stages: [Histogram; Stage::COUNT],
    filter_considered: ShardedCounter,
    filter_kept: ShardedCounter,
    insertions_attempted: ShardedCounter,
    insertions_feasible: ShardedCounter,
    response_s: Histogram,
    worker_items: Vec<AtomicU64>,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    degraded_batches: AtomicU64,
    // ---- batch assignment solver (profiling) ----
    lap_solves: AtomicU64,
    lap_rows: AtomicU64,
    lap_cols: AtomicU64,
    lap_assigned: AtomicU64,
    lap_augmentations: AtomicU64,
    lap_relaxations: AtomicU64,
    lap_skipped_rows: AtomicU64,
    // ---- persistence (profiling) ----
    /// While set, `emit` updates aggregates but suppresses sink
    /// forwarding: WAL replay after a warm restart re-executes events
    /// that the pre-crash run already wrote to its trace.
    muted: AtomicBool,
    checkpoints: AtomicU64,
    restores: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    checkpoint_bytes: Histogram,
    checkpoint_write_s: Histogram,
    // ---- storage/feed faults (profiling) ----
    wal_faults: AtomicU64,
    snapshot_faults: AtomicU64,
    feed_faults: AtomicU64,
    dir_sync_unsupported: AtomicU64,
    quarantines: AtomicU64,
}

impl ObsCore {
    fn new() -> Self {
        let mut worker_items = Vec::with_capacity(MAX_WORKERS);
        worker_items.resize_with(MAX_WORKERS, || AtomicU64::new(0));
        Self {
            sinks: Mutex::new(Vec::new()),
            agg: Mutex::new(Aggregates::default()),
            run: Mutex::new(RunInfo::default()),
            external: Mutex::new(ExternalStats::default()),
            stages: std::array::from_fn(|_| Histogram::new()),
            filter_considered: ShardedCounter::new(),
            filter_kept: ShardedCounter::new(),
            insertions_attempted: ShardedCounter::new(),
            insertions_feasible: ShardedCounter::new(),
            response_s: Histogram::new(),
            worker_items,
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            lap_solves: AtomicU64::new(0),
            lap_rows: AtomicU64::new(0),
            lap_cols: AtomicU64::new(0),
            lap_assigned: AtomicU64::new(0),
            lap_augmentations: AtomicU64::new(0),
            lap_relaxations: AtomicU64::new(0),
            lap_skipped_rows: AtomicU64::new(0),
            muted: AtomicBool::new(false),
            checkpoints: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            checkpoint_bytes: Histogram::new(),
            checkpoint_write_s: Histogram::new(),
            wal_faults: AtomicU64::new(0),
            snapshot_faults: AtomicU64::new(0),
            feed_faults: AtomicU64::new(0),
            dir_sync_unsupported: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }
}

/// Times one pipeline stage; records wall-clock into the owning
/// histogram on drop. Obtained from [`Obs::stage`]; a span from a
/// disabled `Obs` is inert.
pub struct StageSpan {
    inner: Option<(Instant, Arc<ObsCore>, Stage)>,
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if let Some((t0, core, stage)) = self.inner.take() {
            core.stages[stage.index()].record(t0.elapsed().as_secs_f64());
        }
    }
}

/// Cheap cloneable handle to the telemetry bus. The default handle is
/// *disabled*: every call is a single branch on a `None`.
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Obs({})", if self.core.is_some() { "enabled" } else { "disabled" })
    }
}

impl Obs {
    /// A disabled handle — all instrumentation is a no-op.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// An enabled bus with no sinks yet (aggregates and counters still
    /// collect; attach sinks with [`Obs::add_sink`]).
    pub fn enabled() -> Self {
        Self { core: Some(Arc::new(ObsCore::new())) }
    }

    /// Whether telemetry is collected at all.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Attaches an event sink. No-op when disabled.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        if let Some(core) = &self.core {
            core.sinks.lock().expect("obs sinks poisoned").push(sink);
        }
    }

    /// Emits one lifecycle event: updates the deterministic aggregates
    /// and forwards the canonical JSONL line to every sink.
    ///
    /// Must only be called from the sequential commit side, in request
    /// order — that is what makes the stream reproducible.
    pub fn emit(&self, ev: Event) {
        let Some(core) = &self.core else { return };
        if ev.is_meta() {
            // Persistence meta events never touch the deterministic
            // aggregates or the canonical trace; route them to the
            // opt-in meta path even if a caller used `emit` directly.
            return self.emit_meta(ev);
        }
        {
            let mut agg = core.agg.lock().expect("obs aggregates poisoned");
            agg.event_counts[ev.kind_index()] += 1;
            match &ev {
                Event::Dispatch { candidates, feasible, .. } => {
                    agg.candidates.push(f64::from(*candidates));
                    agg.feasible.push(f64::from(*feasible));
                }
                Event::Reject { reason, .. } => {
                    agg.reject_counts[reason.index()] += 1;
                }
                Event::Pickup { wait_s, .. } => agg.waiting_s.push(*wait_s),
                Event::Dropoff { detour_s, .. } => agg.detour_s.push(*detour_s),
                _ => {}
            }
        }
        if core.muted.load(Ordering::Relaxed) {
            // WAL replay: aggregates re-accumulate toward the pre-crash
            // state, but the trace lines were already written by the
            // interrupted run — forwarding again would duplicate them.
            return;
        }
        let mut sinks = core.sinks.lock().expect("obs sinks poisoned");
        if !sinks.is_empty() {
            let line = ev.to_jsonl();
            for s in sinks.iter_mut() {
                s.on_event(&ev, &line);
            }
        }
    }

    /// Emits a persistence meta event (checkpoint/restore) to the sinks
    /// that opted in via [`EventSink::wants_meta`]. Never updates the
    /// deterministic aggregates and ignores the replay mute, so meta
    /// diagnostics survive even during replay.
    pub fn emit_meta(&self, ev: Event) {
        let Some(core) = &self.core else { return };
        let mut sinks = core.sinks.lock().expect("obs sinks poisoned");
        if sinks.iter().any(|s| s.wants_meta()) {
            let line = ev.to_jsonl();
            for s in sinks.iter_mut() {
                if s.wants_meta() {
                    s.on_event(&ev, &line);
                }
            }
        }
    }

    /// Suppresses (or restores) sink forwarding while keeping aggregate
    /// accumulation live — the warm-restart replay path uses this to
    /// rebuild aggregates without duplicating trace lines.
    pub fn set_muted(&self, muted: bool) {
        if let Some(core) = &self.core {
            core.muted.store(muted, Ordering::Relaxed);
        }
    }

    /// Whether sink forwarding is currently suppressed for replay.
    pub fn is_muted(&self) -> bool {
        self.core.as_ref().map(|c| c.muted.load(Ordering::Relaxed)).unwrap_or(false)
    }

    /// Records one snapshot write: payload size in bytes and wall-clock
    /// write latency in seconds (profiling).
    pub fn record_checkpoint(&self, bytes: u64, write_s: f64) {
        if let Some(core) = &self.core {
            core.checkpoints.fetch_add(1, Ordering::Relaxed);
            core.checkpoint_bytes.record(bytes as f64);
            core.checkpoint_write_s.record(write_s);
        }
    }

    /// Records one warm restart from persisted state (profiling).
    pub fn record_restore(&self) {
        if let Some(core) = &self.core {
            core.restores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one appended WAL record of `bytes` payload bytes
    /// (profiling).
    pub fn record_wal_append(&self, bytes: u64) {
        if let Some(core) = &self.core {
            core.wal_records.fetch_add(1, Ordering::Relaxed);
            core.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records one mid-run storage fault on operation `op`
    /// (`wal_append`, `wal_sync`, `snapshot_write`, `snapshot_read`,
    /// `dir_sync`): WAL ops count against the `wal` bucket, everything
    /// else against `snapshot` (profiling).
    pub fn record_storage_fault(&self, op: &str) {
        if let Some(core) = &self.core {
            if op.starts_with("wal") {
                core.wal_faults.fetch_add(1, Ordering::Relaxed);
            } else {
                core.snapshot_faults.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one feed-transport fault (disconnect, oversized or
    /// malformed line) observed by the serve loop (profiling).
    pub fn record_feed_fault(&self) {
        if let Some(core) = &self.core {
            core.feed_faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one tolerated "this filesystem cannot fsync a directory"
    /// outcome of a snapshot rename (profiling). Real directory-fsync
    /// failures surface as storage faults instead.
    pub fn record_dir_sync_unsupported(&self) {
        if let Some(core) = &self.core {
            core.dir_sync_unsupported.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one quarantined state-dir generation — the degrade
    /// durability policy moved the bad generation aside (profiling).
    pub fn record_quarantine(&self) {
        if let Some(core) = &self.core {
            core.quarantines.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Serializes the deterministic aggregates (event/reject counts and
    /// the four outcome series) for a checkpoint. `None` when disabled.
    pub fn snapshot_aggregates(&self) -> Option<Vec<u8>> {
        let core = self.core.as_ref()?;
        Some(core.agg.lock().expect("obs aggregates poisoned").to_bytes())
    }

    /// Replaces the deterministic aggregates with a snapshot taken by
    /// [`Obs::snapshot_aggregates`]. No-op when disabled.
    pub fn restore_aggregates(&self, bytes: &[u8]) -> Result<(), String> {
        let Some(core) = &self.core else { return Ok(()) };
        let agg =
            Aggregates::from_bytes(bytes).map_err(|e| format!("obs aggregate snapshot: {e}"))?;
        *core.agg.lock().expect("obs aggregates poisoned") = agg;
        Ok(())
    }

    /// Starts a wall-clock span for `stage`; the duration is recorded
    /// when the returned guard drops.
    #[inline]
    pub fn stage(&self, stage: Stage) -> StageSpan {
        StageSpan { inner: self.core.as_ref().map(|c| (Instant::now(), c.clone(), stage)) }
    }

    /// Records a partition-filter evaluation: `considered` partitions
    /// scanned, `kept` surviving the λ/ε prune. Thread-safe.
    #[inline]
    pub fn add_filter_stats(&self, considered: u64, kept: u64) {
        if let Some(core) = &self.core {
            core.filter_considered.add(considered);
            core.filter_kept.add(kept);
        }
    }

    /// Records insertion-DP work: `attempted` insertion instances
    /// enumerated, `feasible` passing all deadline checks. Thread-safe.
    #[inline]
    pub fn add_insertions(&self, attempted: u64, feasible: u64) {
        if let Some(core) = &self.core {
            core.insertions_attempted.add(attempted);
            core.insertions_feasible.add(feasible);
        }
    }

    /// Records that worker `worker` scored `items` requests of a
    /// speculative batch. Thread-safe.
    pub fn record_worker_items(&self, worker: usize, items: u64) {
        if let Some(core) = &self.core {
            core.worker_items[worker.min(MAX_WORKERS - 1)].fetch_add(items, Ordering::Relaxed);
        }
    }

    /// Records one dispatched batch of `n_requests` requests.
    pub fn record_batch(&self, n_requests: u64) {
        if let Some(core) = &self.core {
            core.batches.fetch_add(1, Ordering::Relaxed);
            core.batched_requests.fetch_add(n_requests, Ordering::Relaxed);
        }
    }

    /// Records a speculative batch degraded to the sequential path
    /// because a scoring worker panicked. Profiling only: a
    /// `parallelism 1` run never batches, so this must not surface in
    /// the deterministic event stream.
    pub fn record_degraded_batch(&self) {
        if let Some(core) = &self.core {
            core.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Batches degraded to the sequential path after a worker panic
    /// (profiling).
    pub fn degraded_batches(&self) -> u64 {
        self.core.as_ref().map(|c| c.degraded_batches.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records one Kuhn–Munkres batch-window solve: matrix shape, rows
    /// matched, and the solver's internal work counters (profiling —
    /// the resulting assignment is deterministic, the wall-clock and
    /// aggregate work are not part of the trace contract).
    #[allow(clippy::too_many_arguments)]
    pub fn record_lap(
        &self,
        rows: u64,
        cols: u64,
        assigned: u64,
        augmentations: u64,
        relaxations: u64,
        skipped_rows: u64,
    ) {
        if let Some(core) = &self.core {
            core.lap_solves.fetch_add(1, Ordering::Relaxed);
            core.lap_rows.fetch_add(rows, Ordering::Relaxed);
            core.lap_cols.fetch_add(cols, Ordering::Relaxed);
            core.lap_assigned.fetch_add(assigned, Ordering::Relaxed);
            core.lap_augmentations.fetch_add(augmentations, Ordering::Relaxed);
            core.lap_relaxations.fetch_add(relaxations, Ordering::Relaxed);
            core.lap_skipped_rows.fetch_add(skipped_rows, Ordering::Relaxed);
        }
    }

    /// Batch-window assignment solves recorded so far (profiling).
    pub fn lap_solves(&self) -> u64 {
        self.core.as_ref().map(|c| c.lap_solves.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records one dispatcher response latency in seconds (wall-clock;
    /// profiling only).
    pub fn record_response_s(&self, secs: f64) {
        if let Some(core) = &self.core {
            core.response_s.record(secs);
        }
    }

    /// Sets the static run facts reported in the summary.
    pub fn set_run_info(&self, info: RunInfo) {
        if let Some(core) = &self.core {
            *core.run.lock().expect("obs run info poisoned") = info;
        }
    }

    /// Sets the end-of-run cache/oracle statistics.
    pub fn set_external_stats(&self, stats: ExternalStats) {
        if let Some(core) = &self.core {
            *core.external.lock().expect("obs external poisoned") = stats;
        }
    }

    /// Flushes all sinks.
    pub fn flush(&self) {
        if let Some(core) = &self.core {
            for s in core.sinks.lock().expect("obs sinks poisoned").iter_mut() {
                s.flush();
            }
        }
    }

    // ---- inspection (tests, CLI) ----

    /// Count of rejections classified as `reason`. 0 when disabled.
    pub fn reject_count(&self, reason: RejectReason) -> u64 {
        self.core
            .as_ref()
            .map(|c| c.agg.lock().expect("obs aggregates poisoned").reject_counts[reason.index()])
            .unwrap_or(0)
    }

    /// Per-kind event counts in [`EVENT_KINDS`] order. Zeros when
    /// disabled.
    pub fn event_counts(&self) -> [u64; EVENT_KINDS.len()] {
        self.core
            .as_ref()
            .map(|c| c.agg.lock().expect("obs aggregates poisoned").event_counts)
            .unwrap_or_default()
    }

    /// Wall-clock observations recorded for `stage` (profiling).
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.core.as_ref().map(|c| c.stages[stage.index()].count()).unwrap_or(0)
    }

    /// Total insertion instances enumerated (profiling).
    pub fn insertions_attempted(&self) -> u64 {
        self.core.as_ref().map(|c| c.insertions_attempted.get()).unwrap_or(0)
    }

    /// Total partitions scanned by the filter (profiling).
    pub fn filter_considered(&self) -> u64 {
        self.core.as_ref().map(|c| c.filter_considered.get()).unwrap_or(0)
    }

    /// Builds the end-of-run summary JSON. `None` when disabled.
    ///
    /// Layout: deterministic outcome metrics first, then one
    /// `"profiling"` subtree holding everything wall-clock- or
    /// schedule-dependent. Equivalence checks strip that single key.
    pub fn summary_json(&self) -> Option<String> {
        let core = self.core.as_ref()?;
        let agg = core.agg.lock().expect("obs aggregates poisoned");
        let run = core.run.lock().expect("obs run info poisoned").clone();
        let ext = *core.external.lock().expect("obs external poisoned");

        let mut s = String::with_capacity(2048);
        s.push('{');
        let _ = write!(s, r#""schema":"{SUMMARY_SCHEMA}","#);
        let _ = write!(
            s,
            r#""run":{{"scheme":"{}","taxis":{},"requests":{},"offline":{}}},"#,
            json::escape(&run.scheme),
            run.n_taxis,
            run.n_requests,
            run.n_offline
        );
        s.push_str(r#""events":{"#);
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, r#""{kind}":{}"#, agg.event_counts[i]);
        }
        s.push_str("},");
        s.push_str(r#""rejections":{"#);
        for (i, reason) in RejectReason::ALL.iter().enumerate() {
            let _ = write!(s, r#""{}":{},"#, reason.label(), agg.reject_counts[i]);
        }
        let _ = write!(s, r#""total":{}}},"#, agg.reject_counts.iter().sum::<u64>());
        write_series(&mut s, "candidates", &agg.candidates);
        s.push(',');
        write_series(&mut s, "feasible", &agg.feasible);
        s.push(',');
        write_series(&mut s, "waiting_s", &agg.waiting_s);
        s.push(',');
        write_series(&mut s, "detour_s", &agg.detour_s);
        s.push(',');

        // ---- profiling: stripped before determinism comparisons ----
        s.push_str(r#""profiling":{"#);
        let _ = write!(s, r#""parallelism":{},"#, run.parallelism);
        s.push_str(r#""stages":{"#);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_histogram(&mut s, stage.label(), &core.stages[stage.index()], 1e6, "us");
        }
        s.push_str("},");
        let _ = write!(
            s,
            r#""counters":{{"filter_partitions_considered":{},"filter_partitions_kept":{},"insertions_attempted":{},"insertions_feasible":{}}},"#,
            core.filter_considered.get(),
            core.filter_kept.get(),
            core.insertions_attempted.get(),
            core.insertions_feasible.get()
        );
        let cache_total = ext.cache_hits + ext.cache_misses;
        let cache_ratio =
            if cache_total == 0 { 0.0 } else { ext.cache_hits as f64 / cache_total as f64 };
        let _ = write!(
            s,
            r#""path_cache":{{"hits":{},"misses":{},"evictions":{},"hit_ratio":{}}},"#,
            ext.cache_hits,
            ext.cache_misses,
            ext.cache_evictions,
            json::fmt_f64(cache_ratio)
        );
        let oracle_hits = ext.oracle_vector_hits + ext.oracle_memo_hits;
        let oracle_ratio = if ext.oracle_searches == 0 {
            0.0
        } else {
            oracle_hits as f64 / ext.oracle_searches as f64
        };
        let _ = write!(
            s,
            r#""oracle":{{"vector_hits":{},"memo_hits":{},"searches":{},"pin_computes":{},"evictions":{},"hit_ratio":{}}},"#,
            ext.oracle_vector_hits,
            ext.oracle_memo_hits,
            ext.oracle_searches,
            ext.oracle_pin_computes,
            ext.oracle_evictions,
            json::fmt_f64(oracle_ratio)
        );
        let _ = write!(
            s,
            r#""ch":{{"p2p_queries":{},"bucket_sweeps":{},"bucket_sources":{},"shortcuts":{}}},"#,
            ext.ch_p2p_queries, ext.ch_bucket_sweeps, ext.ch_bucket_sources, ext.ch_shortcuts
        );
        let _ = write!(
            s,
            r#""cch":{{"p2p_queries":{},"bucket_sweeps":{},"bucket_sources":{},"customizations":{},"fill_arcs":{}}},"#,
            ext.cch_p2p_queries,
            ext.cch_bucket_sweeps,
            ext.cch_bucket_sources,
            ext.cch_customizations,
            ext.cch_fill_arcs
        );
        let workers = run.parallelism.clamp(1, MAX_WORKERS);
        let batched = core.batched_requests.load(Ordering::Relaxed);
        let _ = write!(
            s,
            r#""workers":{{"batches":{},"batched_requests":{},"degraded_batches":{},"items":["#,
            core.batches.load(Ordering::Relaxed),
            batched,
            core.degraded_batches.load(Ordering::Relaxed)
        );
        for w in 0..workers {
            if w > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", core.worker_items[w].load(Ordering::Relaxed));
        }
        s.push_str("],\"utilization\":[");
        for w in 0..workers {
            if w > 0 {
                s.push(',');
            }
            let items = core.worker_items[w].load(Ordering::Relaxed);
            let u = if batched == 0 { 0.0 } else { items as f64 / batched as f64 };
            let _ = write!(s, "{}", json::fmt_f64(u));
        }
        s.push_str("]},");
        let _ = write!(
            s,
            r#""persistence":{{"checkpoints":{},"restores":{},"wal_records":{},"wal_bytes":{},"#,
            core.checkpoints.load(Ordering::Relaxed),
            core.restores.load(Ordering::Relaxed),
            core.wal_records.load(Ordering::Relaxed),
            core.wal_bytes.load(Ordering::Relaxed)
        );
        write_histogram(&mut s, "checkpoint_bytes", &core.checkpoint_bytes, 1.0, "b");
        s.push(',');
        write_histogram(&mut s, "checkpoint_write_ms", &core.checkpoint_write_s, 1e3, "ms");
        s.push_str("},");
        let _ = write!(
            s,
            r#""faults":{{"wal":{},"snapshot":{},"feed":{},"dir_sync_unsupported":{},"quarantines":{}}},"#,
            core.wal_faults.load(Ordering::Relaxed),
            core.snapshot_faults.load(Ordering::Relaxed),
            core.feed_faults.load(Ordering::Relaxed),
            core.dir_sync_unsupported.load(Ordering::Relaxed),
            core.quarantines.load(Ordering::Relaxed)
        );
        let _ = write!(
            s,
            r#""lap":{{"solves":{},"rows":{},"cols":{},"assigned":{},"augmentations":{},"relaxations":{},"skipped_rows":{}}},"#,
            core.lap_solves.load(Ordering::Relaxed),
            core.lap_rows.load(Ordering::Relaxed),
            core.lap_cols.load(Ordering::Relaxed),
            core.lap_assigned.load(Ordering::Relaxed),
            core.lap_augmentations.load(Ordering::Relaxed),
            core.lap_relaxations.load(Ordering::Relaxed),
            core.lap_skipped_rows.load(Ordering::Relaxed)
        );
        let _ = write!(
            s,
            r#""dtree":{{"scores":{},"rebuilds":{},"advances":{},"commits":{},"removes":{},"retimes":{},"legs_reused":{},"legs_filled":{},"memo_reuses":{},"memo_fills":{}}},"#,
            ext.dtree_scores,
            ext.dtree_rebuilds,
            ext.dtree_advances,
            ext.dtree_commits,
            ext.dtree_removes,
            ext.dtree_retimes,
            ext.dtree_legs_reused,
            ext.dtree_legs_filled,
            ext.dtree_memo_reuses,
            ext.dtree_memo_fills
        );
        write_histogram(&mut s, "response_ms", &core.response_s, 1e3, "ms");
        s.push_str("}}");
        Some(s)
    }
}

/// Writes `"name":{"count":..,"mean":..,"p50":..,"p95":..,"p99":..,"min":..,"max":..}`.
fn write_series(out: &mut String, name: &str, series: &Series) {
    let _ = write!(
        out,
        r#""{name}":{{"count":{},"mean":{},"p50":{},"p95":{},"p99":{},"min":{},"max":{}}}"#,
        series.len(),
        json::fmt_f64(series.mean()),
        json::fmt_f64(series.quantile(0.5)),
        json::fmt_f64(series.quantile(0.95)),
        json::fmt_f64(series.quantile(0.99)),
        json::fmt_f64(series.min()),
        json::fmt_f64(series.max())
    );
}

/// Writes a histogram block with quantiles scaled by `scale` and
/// suffixed `unit` (e.g. seconds → µs with `scale = 1e6`).
fn write_histogram(out: &mut String, name: &str, h: &Histogram, scale: f64, unit: &str) {
    let _ = write!(
        out,
        r#""{name}":{{"count":{},"total_s":{},"p50_{unit}":{},"p95_{unit}":{},"p99_{unit}":{},"max_{unit}":{}}}"#,
        h.count(),
        json::fmt_f64(h.sum()),
        json::fmt_f64(h.quantile(0.5) * scale),
        json::fmt_f64(h.quantile(0.95) * scale),
        json::fmt_f64(h.quantile(0.99) * scale),
        json::fmt_f64(h.max() * scale)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.emit(Event::Arrival { t: 0.0, req: 0, offline: false });
        obs.add_filter_stats(10, 2);
        obs.add_insertions(5, 1);
        obs.record_batch(8);
        drop(obs.stage(Stage::Routing));
        assert!(obs.summary_json().is_none());
        assert_eq!(obs.event_counts(), [0; EVENT_KINDS.len()]);
    }

    #[test]
    fn emit_updates_aggregates_and_sinks() {
        let obs = Obs::enabled();
        let (sink, buf) = MemorySink::new();
        obs.add_sink(Box::new(sink));
        obs.emit(Event::Arrival { t: 1.0, req: 0, offline: false });
        obs.emit(Event::Dispatch { t: 1.0, req: 0, candidates: 4, feasible: 2 });
        obs.emit(Event::Reject { t: 1.0, req: 0, reason: RejectReason::NoFeasibleInsertion });
        assert_eq!(obs.event_counts()[0], 1);
        assert_eq!(obs.reject_count(RejectReason::NoFeasibleInsertion), 1);
        assert_eq!(obs.reject_count(RejectReason::EmptyFleet), 0);
        assert_eq!(buf.lock().unwrap().lines().count(), 3);
    }

    #[test]
    fn spans_record_into_stage_histograms() {
        let obs = Obs::enabled();
        {
            let _span = obs.stage(Stage::InsertionDp);
            std::hint::black_box(0u64);
        }
        assert_eq!(obs.stage_count(Stage::InsertionDp), 1);
        assert_eq!(obs.stage_count(Stage::Routing), 0);
    }

    #[test]
    fn summary_is_valid_json_with_deterministic_and_profiling_parts() {
        let obs = Obs::enabled();
        obs.set_run_info(RunInfo {
            scheme: "mt-share".into(),
            n_taxis: 3,
            n_requests: 5,
            n_offline: 1,
            parallelism: 2,
        });
        obs.emit(Event::Dispatch { t: 0.5, req: 0, candidates: 2, feasible: 1 });
        obs.emit(Event::Commit { t: 0.5, req: 0, taxi: 1, detour_s: 9.0, schedule_len: 2 });
        obs.emit(Event::Pickup { t: 2.0, req: 0, taxi: 1, wait_s: 1.5 });
        obs.add_filter_stats(12, 3);
        obs.add_insertions(7, 2);
        obs.record_worker_items(0, 3);
        obs.record_batch(3);
        obs.record_response_s(0.001);
        obs.set_external_stats(ExternalStats {
            cache_hits: 9,
            cache_misses: 1,
            ..ExternalStats::default()
        });
        let text = obs.summary_json().unwrap();
        let v = json::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SUMMARY_SCHEMA));
        assert_eq!(
            v.get("events").and_then(|e| e.get("dispatch")).and_then(|n| n.as_num()),
            Some(1.0)
        );
        let prof = v.get("profiling").expect("profiling subtree");
        assert_eq!(prof.get("parallelism").and_then(|n| n.as_num()), Some(2.0));
        assert_eq!(
            prof.get("path_cache").and_then(|c| c.get("hit_ratio")).and_then(|n| n.as_num()),
            Some(0.9)
        );
        // Stripping `profiling` leaves the deterministic core only.
        let mut stripped = v.clone();
        stripped.strip_key("profiling");
        assert!(stripped.get("profiling").is_none());
        assert!(stripped.get("rejections").is_some());
    }

    #[test]
    fn meta_events_reach_only_opted_in_sinks_and_skip_aggregates() {
        let obs = Obs::enabled();
        let (plain, plain_buf) = MemorySink::new();
        let (meta, meta_buf) = MemorySink::new_with_meta();
        obs.add_sink(Box::new(plain));
        obs.add_sink(Box::new(meta));
        // Route through plain `emit` on purpose: meta events must be
        // auto-diverted to the meta path.
        obs.emit(Event::Checkpoint { t: 5.0, step: 10, bytes: 1024 });
        obs.emit_meta(Event::Restore { t: 5.0, step: 10, snapshot_step: 4, wal_replayed: 6 });
        obs.emit(Event::Arrival { t: 6.0, req: 0, offline: false });
        assert_eq!(plain_buf.lock().unwrap().lines().count(), 1, "canonical trace: arrival only");
        assert_eq!(meta_buf.lock().unwrap().lines().count(), 3, "meta sink sees everything");
        let counts = obs.event_counts();
        assert_eq!(counts.iter().sum::<u64>(), 1, "meta events never counted");
    }

    #[test]
    fn muted_emit_updates_aggregates_but_not_sinks() {
        let obs = Obs::enabled();
        let (sink, buf) = MemorySink::new();
        obs.add_sink(Box::new(sink));
        obs.set_muted(true);
        assert!(obs.is_muted());
        obs.emit(Event::Pickup { t: 1.0, req: 0, taxi: 1, wait_s: 2.5 });
        obs.emit(Event::Reject { t: 1.0, req: 1, reason: RejectReason::EmptyFleet });
        assert_eq!(buf.lock().unwrap().len(), 0, "replay must not duplicate trace lines");
        assert_eq!(obs.reject_count(RejectReason::EmptyFleet), 1);
        obs.set_muted(false);
        obs.emit(Event::Arrival { t: 2.0, req: 2, offline: false });
        assert_eq!(buf.lock().unwrap().lines().count(), 1);
        let counts = obs.event_counts();
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn aggregates_snapshot_round_trips() {
        let obs = Obs::enabled();
        obs.emit(Event::Dispatch { t: 0.5, req: 0, candidates: 7, feasible: 3 });
        obs.emit(Event::Pickup { t: 2.0, req: 0, taxi: 1, wait_s: 1.5 });
        obs.emit(Event::Reject { t: 3.0, req: 1, reason: RejectReason::UnreachableOd });
        let snap = obs.snapshot_aggregates().expect("enabled");
        let restored = Obs::enabled();
        restored.restore_aggregates(&snap).expect("restore");
        assert_eq!(restored.event_counts(), obs.event_counts());
        assert_eq!(restored.reject_count(RejectReason::UnreachableOd), 1);
        // Series survive value-for-value: quantiles match bit-exactly.
        let a = json::parse(&obs.summary_json().unwrap()).unwrap();
        let b = json::parse(&restored.summary_json().unwrap()).unwrap();
        for key in ["candidates", "feasible", "waiting_s", "detour_s"] {
            let pa = a.get(key).and_then(|s| s.get("p50")).and_then(|n| n.as_num());
            let pb = b.get(key).and_then(|s| s.get("p50")).and_then(|n| n.as_num());
            assert_eq!(pa, pb, "series {key} p50 drifted");
        }
        // Corruption is rejected, original aggregates untouched.
        let mut bad = snap.clone();
        bad.truncate(bad.len() - 1);
        assert!(restored.restore_aggregates(&bad).is_err());
        assert_eq!(restored.event_counts(), obs.event_counts());
    }

    #[test]
    fn summary_carries_persistence_profiling_block() {
        let obs = Obs::enabled();
        obs.record_checkpoint(4096, 0.002);
        obs.record_checkpoint(8192, 0.004);
        obs.record_restore();
        obs.record_wal_append(64);
        obs.record_wal_append(32);
        obs.record_wal_append(32);
        let v = json::parse(&obs.summary_json().unwrap()).unwrap();
        let p = v.get("profiling").unwrap().get("persistence").expect("persistence block");
        assert_eq!(p.get("checkpoints").and_then(|n| n.as_num()), Some(2.0));
        assert_eq!(p.get("restores").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(p.get("wal_records").and_then(|n| n.as_num()), Some(3.0));
        assert_eq!(p.get("wal_bytes").and_then(|n| n.as_num()), Some(128.0));
        let hist = p.get("checkpoint_bytes").expect("bytes histogram");
        assert_eq!(hist.get("count").and_then(|n| n.as_num()), Some(2.0));
    }

    #[test]
    fn summary_reflects_reject_taxonomy_counts() {
        let obs = Obs::enabled();
        obs.emit(Event::Reject { t: 0.0, req: 1, reason: RejectReason::UnreachableOd });
        obs.emit(Event::Reject { t: 0.0, req: 2, reason: RejectReason::UnreachableOd });
        obs.emit(Event::Reject { t: 0.0, req: 3, reason: RejectReason::OfflineExpired });
        let v = json::parse(&obs.summary_json().unwrap()).unwrap();
        let rej = v.get("rejections").unwrap();
        assert_eq!(rej.get("unreachable_od").and_then(|n| n.as_num()), Some(2.0));
        assert_eq!(rej.get("offline_expired").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(rej.get("total").and_then(|n| n.as_num()), Some(3.0));
    }
}
