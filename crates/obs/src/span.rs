//! Pipeline stages instrumented with wall-clock span timers.

/// The dispatch pipeline stages whose wall-clock latency is tracked.
/// These populate the summary's `profiling.stages` subtree only —
/// wall-clock is nondeterministic and excluded from equivalence checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Grid/index probe producing the candidate taxi set.
    CandidateSearch,
    /// Mobility-cluster partition filtering (Sec. IV-B).
    PartitionFilter,
    /// Schedule-insertion dynamic program over candidates.
    InsertionDp,
    /// Shortest-path / probabilistic routing legs.
    Routing,
    /// Sequential commit (validation + plan install).
    Commit,
    /// One-off contraction-hierarchy preprocessing (build or artifact
    /// load) before the simulation starts.
    PreprocessCh,
    /// Kuhn–Munkres assignment solve over a batch window's cost matrix.
    BatchSolve,
    /// Incremental dynamic-tree scheduling update (`--scheduler dtree`):
    /// spine sync + memoized insertion scoring.
    DtreeUpdate,
    /// CCH metric re-customization when a traffic-shift window opens or
    /// closes (`--router cch` under `--disruptions`).
    Customize,
}

impl Stage {
    /// Number of stages (size of per-stage arrays).
    pub const COUNT: usize = 9;

    /// All stages in stable (serialization) order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::CandidateSearch,
        Stage::PartitionFilter,
        Stage::InsertionDp,
        Stage::Routing,
        Stage::Commit,
        Stage::PreprocessCh,
        Stage::BatchSolve,
        Stage::DtreeUpdate,
        Stage::Customize,
    ];

    /// Index into per-stage arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::CandidateSearch => 0,
            Stage::PartitionFilter => 1,
            Stage::InsertionDp => 2,
            Stage::Routing => 3,
            Stage::Commit => 4,
            Stage::PreprocessCh => 5,
            Stage::BatchSolve => 6,
            Stage::DtreeUpdate => 7,
            Stage::Customize => 8,
        }
    }

    /// The snake_case label used in the summary JSON.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CandidateSearch => "candidate_search",
            Stage::PartitionFilter => "partition_filter",
            Stage::InsertionDp => "insertion_dp",
            Stage::Routing => "routing",
            Stage::Commit => "commit",
            Stage::PreprocessCh => "preprocess_ch",
            Stage::BatchSolve => "batch_solve",
            Stage::DtreeUpdate => "dtree_update",
            Stage::Customize => "customize",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_all_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }
}
