//! Periodic steady-state reports for service mode.
//!
//! A long-lived `mtshare serve` process emits one JSONL line per
//! reporting interval describing *what changed since the previous
//! line*: arrivals, commits, rejections, admission sheds, per-stage
//! p95 latency over the interval, plus absolute gauges (ingested
//! total, step counter, queue peak depth, RSS). Interval deltas make
//! the stream useful for dashboards without the consumer having to
//! differentiate counters itself.
//!
//! The stream is *profiling-grade* output: stage latencies and RSS are
//! wall-clock/OS facts, so steady lines are never part of the
//! determinism contract (unlike the canonical event trace).

use crate::event::{RejectReason, EVENT_KINDS};
use crate::hist::HistogramSnapshot;
use crate::json;
use crate::span::Stage;
use crate::Obs;
use std::fmt::Write as _;

/// Steady-state report schema identifier.
/// v2: `stage_p95_us` gained the `dtree_update` stage.
pub const STEADY_SCHEMA: &str = "mtshare-obs-steady/v2";

/// Gauges owned by the serve runtime (not derivable from [`Obs`])
/// that ride along on each steady line.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteadyExtra {
    /// Peak admission-queue depth observed since the previous report.
    pub queue_peak: usize,
    /// Total feed entries ingested so far (absolute gauge).
    pub ingested: u64,
    /// Simulator step counter (absolute gauge).
    pub steps: u64,
}

/// Interval-delta state for the steady-state report stream.
///
/// Holds the counter/histogram baselines from the previous report so
/// each [`SteadyTracker::report_line`] call emits deltas covering
/// exactly one interval.
pub struct SteadyTracker {
    last_t: f64,
    prev_events: [u64; EVENT_KINDS.len()],
    prev_shed: u64,
    prev_stages: Option<Vec<HistogramSnapshot>>,
}

/// Reject-reason indices counted as admission "shed" on steady lines.
const SHED_REASONS: [RejectReason; 3] =
    [RejectReason::QueueShed, RejectReason::QueueRejected, RejectReason::DrainRejected];

impl SteadyTracker {
    /// Captures the baseline: the first report line will cover
    /// everything from this call onward.
    pub fn new(obs: &Obs) -> Self {
        Self {
            last_t: 0.0,
            prev_events: obs.event_counts(),
            prev_shed: shed_total(obs),
            prev_stages: stage_snapshots(obs),
        }
    }

    /// Builds one steady-state JSONL line covering the interval since
    /// the previous call (or since [`SteadyTracker::new`]) and rolls
    /// the baseline forward. `t` is the engine's virtual clock.
    /// Returns `None` when `obs` is disabled.
    pub fn report_line(&mut self, obs: &Obs, t: f64, extra: &SteadyExtra) -> Option<String> {
        let core = obs.core.as_ref()?;
        let events = obs.event_counts();
        let shed = shed_total(obs);

        let mut s = String::with_capacity(512);
        s.push('{');
        let _ = write!(s, r#""schema":"{STEADY_SCHEMA}","#);
        let _ = write!(s, r#""t":{},"#, json::fmt_f64(t));
        let _ = write!(s, r#""interval_s":{},"#, json::fmt_f64(t - self.last_t));
        let delta = |kind: usize| events[kind].saturating_sub(self.prev_events[kind]);
        let _ = write!(s, r#""arrivals":{},"#, delta(0));
        let _ = write!(s, r#""commits":{},"#, delta(2));
        let _ = write!(s, r#""rejects":{},"#, delta(3));
        let _ = write!(s, r#""shed":{},"#, shed.saturating_sub(self.prev_shed));
        let _ = write!(s, r#""queue_peak":{},"#, extra.queue_peak);
        let _ = write!(s, r#""ingested":{},"#, extra.ingested);
        let _ = write!(s, r#""steps":{},"#, extra.steps);
        s.push_str(r#""stage_p95_us":{"#);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let h = &core.stages[stage.index()];
            let p95 = match self.prev_stages.as_ref() {
                Some(snaps) => h.quantile_since(&snaps[stage.index()], 0.95),
                None => h.quantile(0.95),
            };
            let _ = write!(s, r#""{}":{}"#, stage.label(), json::fmt_f64(p95 * 1e6));
        }
        s.push_str("},");
        let _ = write!(s, r#""rss_bytes":{}"#, rss_bytes());
        s.push('}');

        self.last_t = t;
        self.prev_events = events;
        self.prev_shed = shed;
        self.prev_stages = stage_snapshots(obs);
        Some(s)
    }
}

fn shed_total(obs: &Obs) -> u64 {
    SHED_REASONS.iter().map(|&r| obs.reject_count(r)).sum()
}

fn stage_snapshots(obs: &Obs) -> Option<Vec<HistogramSnapshot>> {
    let core = obs.core.as_ref()?;
    Some(Stage::ALL.iter().map(|s| core.stages[s.index()].snapshot()).collect())
}

/// Resident-set estimate in bytes from `/proc/self/statm` (second
/// field × 4096-byte pages). Returns 0 on platforms without procfs —
/// consumers treat 0 as "unavailable", not "no memory".
pub fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else { return 0 };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|pages| pages.parse::<u64>().ok())
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn disabled_obs_yields_no_steady_line() {
        let obs = Obs::disabled();
        let mut tracker = SteadyTracker::new(&obs);
        assert!(tracker.report_line(&obs, 10.0, &SteadyExtra::default()).is_none());
    }

    #[test]
    fn steady_lines_carry_interval_deltas_not_totals() {
        let obs = Obs::enabled();
        obs.emit(Event::Arrival { t: 1.0, req: 0, offline: false });
        obs.emit(Event::Commit { t: 1.0, req: 0, taxi: 0, detour_s: 0.0, schedule_len: 2 });
        let mut tracker = SteadyTracker::new(&obs);
        // Baseline taken after the first two events: they must not leak
        // into the first interval.
        obs.emit(Event::Arrival { t: 5.0, req: 1, offline: false });
        obs.emit(Event::Reject { t: 5.0, req: 1, reason: RejectReason::QueueShed });
        let extra = SteadyExtra { queue_peak: 3, ingested: 2, steps: 40 };
        let line = tracker.report_line(&obs, 10.0, &extra).expect("enabled");
        let v = json::parse(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(STEADY_SCHEMA));
        assert_eq!(v.get("t").and_then(|n| n.as_num()), Some(10.0));
        assert_eq!(v.get("interval_s").and_then(|n| n.as_num()), Some(10.0));
        assert_eq!(v.get("arrivals").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(v.get("commits").and_then(|n| n.as_num()), Some(0.0));
        assert_eq!(v.get("rejects").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(v.get("shed").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(v.get("queue_peak").and_then(|n| n.as_num()), Some(3.0));
        assert_eq!(v.get("ingested").and_then(|n| n.as_num()), Some(2.0));
        assert_eq!(v.get("steps").and_then(|n| n.as_num()), Some(40.0));
        assert!(v.get("stage_p95_us").and_then(|o| o.get("commit")).is_some());
        // Second interval: nothing happened.
        let line2 = tracker.report_line(&obs, 20.0, &extra).expect("enabled");
        let v2 = json::parse(&line2).unwrap();
        assert_eq!(v2.get("interval_s").and_then(|n| n.as_num()), Some(10.0));
        assert_eq!(v2.get("arrivals").and_then(|n| n.as_num()), Some(0.0));
        assert_eq!(v2.get("rejects").and_then(|n| n.as_num()), Some(0.0));
        assert_eq!(v2.get("shed").and_then(|n| n.as_num()), Some(0.0));
    }

    #[test]
    fn rss_estimate_is_positive_on_linux() {
        // The test process certainly has resident pages; on platforms
        // without procfs the helper contract is "0 = unavailable".
        let rss = rss_bytes();
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(rss > 0, "statm present but rss = 0");
        }
    }
}
