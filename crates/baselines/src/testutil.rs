//! Shared test fixture for the baseline schemes.

use mtshare_model::{
    DispatchOutcome, DispatchScheme, RequestId, RequestStore, RideRequest, Taxi, TaxiId,
    TimedRoute, World,
};
use mtshare_road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
use mtshare_routing::{HotNodeOracle, PathCache};
use std::sync::Arc;

pub(crate) struct Bench {
    pub graph: Arc<RoadNetwork>,
    pub cache: PathCache,
    pub oracle: HotNodeOracle,
    pub taxis: Vec<Taxi>,
    pub requests: RequestStore,
}

impl Bench {
    pub fn new() -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        Self { graph, cache, oracle, taxis: Vec::new(), requests: RequestStore::new() }
    }

    pub fn add_taxi(&mut self, at: NodeId) -> TaxiId {
        let id = TaxiId(self.taxis.len() as u32);
        self.taxis.push(Taxi::new(id, 4, at));
        id
    }

    pub fn world(&self) -> World<'_> {
        World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        }
    }

    pub fn make_request(&mut self, origin: u32, dest: u32, release: f64, rho: f64) -> RideRequest {
        let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
        self.oracle.pin(NodeId(origin));
        self.oracle.pin(NodeId(dest));
        let req = RideRequest {
            id: RequestId(self.requests.len() as u32),
            release_time: release,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers: 1,
            deadline: release + direct * rho,
            direct_cost_s: direct,
            offline: false,
        };
        self.requests.push(req.clone());
        req
    }

    pub fn install(&self, scheme: &mut dyn DispatchScheme) {
        scheme.install(&self.world());
    }

    pub fn dispatch(
        &self,
        scheme: &mut dyn DispatchScheme,
        req: &RideRequest,
        now: f64,
    ) -> DispatchOutcome {
        let world = World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        };
        scheme.dispatch(req, now, &world)
    }

    pub fn dispatch_and_commit(
        &mut self,
        scheme: &mut dyn DispatchScheme,
        req: &RideRequest,
        now: f64,
    ) -> bool {
        let out = self.dispatch(scheme, req, now);
        match out.assignment {
            None => false,
            Some(a) => {
                let t = &mut self.taxis[a.taxi.index()];
                let pos = t.position_at(now);
                let route = TimedRoute::build_on(&self.graph, pos, now, &a.legs, &a.schedule);
                t.assigned.push(req.id);
                t.location = pos;
                t.location_time = now;
                t.set_plan(a.schedule, route, now);
                let world = World {
                    graph: &self.graph,
                    cache: &self.cache,
                    oracle: &self.oracle,
                    taxis: &self.taxis,
                    requests: &self.requests,
                };
                scheme.after_assign(&self.taxis[a.taxi.index()], &world);
                true
            }
        }
    }
}
