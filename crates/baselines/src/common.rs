//! Helpers shared by the baseline schemes.

use mtshare_model::{Schedule, Taxi, Time, World};
use mtshare_road::NodeId;
use mtshare_routing::Path;

/// Materializes shortest-path legs for `schedule` starting at `pos`
/// (baselines always route legs as shortest paths, Sec. III-A).
pub(crate) fn shortest_legs(
    world: &World<'_>,
    pos: NodeId,
    schedule: &Schedule,
) -> Option<Vec<Path>> {
    let mut legs = Vec::with_capacity(schedule.len());
    let mut from = pos;
    for ev in schedule.events() {
        let leg =
            if from == ev.node { Path::trivial(from) } else { world.cache.path(from, ev.node)? };
        from = ev.node;
        legs.push(leg);
    }
    Some(legs)
}

/// Remaining travel cost of the taxi's current plan from `now` (the
/// `cost(R_tj)` term of Eq. 4).
pub(crate) fn remaining_cost(taxi: &Taxi, now: Time) -> f64 {
    taxi.route.as_ref().map(|r| (r.end_time() - now).max(0.0)).unwrap_or(0.0)
}

/// Committed rider load (onboard + assigned) of a taxi.
pub(crate) fn committed_load(taxi: &Taxi, world: &World<'_>) -> u32 {
    taxi.onboard
        .iter()
        .chain(taxi.assigned.iter())
        .map(|&r| world.requests.get(r).passengers as u32)
        .sum()
}
