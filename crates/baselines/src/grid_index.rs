//! Uniform-grid taxi index used by the baseline schemes.
//!
//! T-Share and pGreedyDP "index all requests and taxis using grids"
//! (Sec. V-A2): taxis are bucketed by the grid cell of their current
//! position, and candidate searching enumerates the cells overlapping a
//! circle. Unlike mT-Share's partition index, there is no arrival-time or
//! travel-direction information.

use mtshare_model::{Taxi, TaxiId, Time};
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};
use mtshare_road::{BoundingBox, GeoPoint, RoadNetwork};

/// Grid-bucketed taxi positions.
#[derive(Debug)]
pub struct GridTaxiIndex {
    cells: Vec<Vec<TaxiId>>,
    taxi_cell: Vec<Option<u32>>,
    rows: usize,
    cols: usize,
    bbox: BoundingBox,
    dlat: f64,
    dlng: f64,
}

impl GridTaxiIndex {
    /// Builds an empty index with cells roughly `cell_m` metres wide.
    pub fn new(graph: &RoadNetwork, cell_m: f64, n_taxis: usize) -> Self {
        let bbox = graph.bbox();
        let cols = ((bbox.width_m() / cell_m).ceil() as usize).clamp(1, 1024);
        let rows = ((bbox.height_m() / cell_m).ceil() as usize).clamp(1, 1024);
        let dlat = (bbox.max_lat - bbox.min_lat).max(1e-12) / rows as f64 * (1.0 + 1e-12);
        let dlng = (bbox.max_lng - bbox.min_lng).max(1e-12) / cols as f64 * (1.0 + 1e-12);
        Self {
            cells: vec![Vec::new(); rows * cols],
            taxi_cell: vec![None; n_taxis],
            rows,
            cols,
            bbox,
            dlat,
            dlng,
        }
    }

    fn cell_of(&self, p: &GeoPoint) -> u32 {
        let r = (((p.lat - self.bbox.min_lat) / self.dlat) as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        let c = (((p.lng - self.bbox.min_lng) / self.dlng) as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        (r * self.cols + c) as u32
    }

    /// Re-buckets `taxi` at its position at time `now`.
    pub fn update_taxi(&mut self, taxi: &Taxi, graph: &RoadNetwork, now: Time) {
        let p = graph.point(taxi.position_at(now));
        let cell = self.cell_of(&p);
        if self.taxi_cell[taxi.id.index()] == Some(cell) {
            return;
        }
        self.remove_taxi(taxi.id);
        self.cells[cell as usize].push(taxi.id);
        self.taxi_cell[taxi.id.index()] = Some(cell);
    }

    /// Removes `taxi` from the index.
    pub fn remove_taxi(&mut self, taxi: TaxiId) {
        if let Some(cell) = self.taxi_cell[taxi.index()].take() {
            let v = &mut self.cells[cell as usize];
            if let Some(pos) = v.iter().position(|&t| t == taxi) {
                v.swap_remove(pos);
            }
        }
    }

    /// Visits every indexed taxi whose cell overlaps the circle
    /// `(center, radius_m)`. Cell-level filter only — callers re-check
    /// exact distances as the original schemes do.
    pub fn visit_in_range<F: FnMut(TaxiId)>(&self, center: &GeoPoint, radius_m: f64, mut f: F) {
        let lat_cells = (radius_m / (self.dlat.to_radians() * mtshare_road::geo::EARTH_RADIUS_M))
            .ceil() as isize
            + 1;
        let lng_m = self.dlng.to_radians()
            * mtshare_road::geo::EARTH_RADIUS_M
            * center.lat.to_radians().cos().abs().max(0.01);
        let lng_cells = (radius_m / lng_m).ceil() as isize + 1;
        let r0 = ((center.lat - self.bbox.min_lat) / self.dlat) as isize;
        let c0 = ((center.lng - self.bbox.min_lng) / self.dlng) as isize;
        for r in (r0 - lat_cells).max(0)..=(r0 + lat_cells).min(self.rows as isize - 1) {
            for c in (c0 - lng_cells).max(0)..=(c0 + lng_cells).min(self.cols as isize - 1) {
                for &t in &self.cells[(r as usize) * self.cols + c as usize] {
                    f(t);
                }
            }
        }
    }

    /// Every bucketed taxi, sorted by id (for invariant checks: a removed
    /// taxi must not appear here).
    pub fn indexed_taxis(&self) -> Vec<TaxiId> {
        self.taxi_cell
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| TaxiId(i as u32))
            .collect()
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cells.iter().map(|c| c.len() * 4 + std::mem::size_of::<Vec<TaxiId>>()).sum::<usize>()
            + self.taxi_cell.len() * 8
    }

    /// Serializes the mutable occupancy (cell buckets + per-taxi cell) for
    /// a checkpoint. Grid geometry is *not* serialized: it is a pure
    /// function of the graph and cell size the constructor receives, so a
    /// warm restart rebuilds it and restores only the occupancy. Bucket
    /// order matters — `swap_remove` makes it history-dependent, and it
    /// leaks into candidate order through stable distance-tie sorting — so
    /// buckets are restored verbatim.
    pub fn snapshot_occupancy(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.usize(self.cells.len());
        for bucket in &self.cells {
            enc.seq(bucket);
        }
        enc.usize(self.taxi_cell.len());
        for e in &self.taxi_cell {
            e.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Restores occupancy produced by [`GridTaxiIndex::snapshot_occupancy`]
    /// onto a freshly constructed index of identical geometry. Rejects
    /// shape mismatches and bucket/per-taxi disagreements instead of
    /// mis-restoring.
    pub fn restore_occupancy(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        type Occupancy = (Vec<Vec<TaxiId>>, Vec<Option<u32>>);
        let inner =
            |dec: &mut Decoder<'_>, shape: usize, fleet: usize| -> Result<Occupancy, DecodeError> {
                let nc = dec.usize()?;
                if nc != shape {
                    return Err(DecodeError::Invalid("cell grid shape mismatch"));
                }
                let mut cells: Vec<Vec<TaxiId>> = Vec::with_capacity(nc.min(1 << 20));
                for _ in 0..nc {
                    cells.push(dec.seq()?);
                }
                let nt = dec.usize()?;
                if nt != fleet {
                    return Err(DecodeError::Invalid("fleet size mismatch"));
                }
                let mut taxi_cell: Vec<Option<u32>> = Vec::with_capacity(nt.min(1 << 20));
                for _ in 0..nt {
                    let e = Option::<u32>::decode(dec)?;
                    if e.is_some_and(|c| c as usize >= nc) {
                        return Err(DecodeError::Invalid("taxi bucketed in out-of-range cell"));
                    }
                    taxi_cell.push(e);
                }
                // Cross-consistency: each bucket entry has the matching
                // per-taxi cell, and counts agree (so no duplicates).
                for (ci, bucket) in cells.iter().enumerate() {
                    for &t in bucket {
                        let ok = taxi_cell.get(t.index()).is_some_and(|e| *e == Some(ci as u32));
                        if !ok {
                            return Err(DecodeError::Invalid("bucket and per-taxi cell disagree"));
                        }
                    }
                }
                let bucketed: usize = cells.iter().map(|c| c.len()).sum();
                let assigned = taxi_cell.iter().filter(|e| e.is_some()).count();
                if bucketed != assigned {
                    return Err(DecodeError::Invalid("bucketed taxi count disagrees"));
                }
                Ok((cells, taxi_cell))
            };
        let (cells, taxi_cell) = inner(&mut dec, self.cells.len(), self.taxi_cell.len())
            .map_err(|e| format!("grid index: {e}"))?;
        if !dec.is_done() {
            return Err("trailing bytes in grid index snapshot".into());
        }
        self.cells = cells;
        self.taxi_cell = taxi_cell;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig, NodeId};

    fn setup() -> (RoadNetwork, GridTaxiIndex) {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let idx = GridTaxiIndex::new(&g, 250.0, 4);
        (g, idx)
    }

    #[test]
    fn update_and_range_query() {
        let (g, mut idx) = setup();
        let t0 = Taxi::new(TaxiId(0), 4, NodeId(0));
        let t1 = Taxi::new(TaxiId(1), 4, NodeId(399));
        idx.update_taxi(&t0, &g, 0.0);
        idx.update_taxi(&t1, &g, 0.0);
        let mut near0 = Vec::new();
        idx.visit_in_range(&g.point(NodeId(0)), 300.0, |t| near0.push(t));
        assert!(near0.contains(&TaxiId(0)));
        assert!(!near0.contains(&TaxiId(1)));
    }

    #[test]
    fn reposition_moves_bucket() {
        let (g, mut idx) = setup();
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        idx.update_taxi(&t, &g, 0.0);
        t.location = NodeId(399);
        idx.update_taxi(&t, &g, 0.0);
        let mut near0 = Vec::new();
        idx.visit_in_range(&g.point(NodeId(0)), 300.0, |x| near0.push(x));
        assert!(near0.is_empty());
        let mut near399 = Vec::new();
        idx.visit_in_range(&g.point(NodeId(399)), 300.0, |x| near399.push(x));
        assert_eq!(near399, vec![TaxiId(0)]);
    }

    #[test]
    fn update_same_cell_is_noop() {
        let (g, mut idx) = setup();
        let t = Taxi::new(TaxiId(0), 4, NodeId(0));
        idx.update_taxi(&t, &g, 0.0);
        idx.update_taxi(&t, &g, 1.0);
        let mut count = 0;
        idx.visit_in_range(&g.point(NodeId(0)), 300.0, |_| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn occupancy_round_trips_verbatim() {
        let (g, mut idx) = setup();
        for (i, n) in [(0u32, 0u32), (1, 399), (2, 21), (3, 22)] {
            idx.update_taxi(&Taxi::new(TaxiId(i), 4, NodeId(n)), &g, 0.0);
        }
        // swap_remove history: removing taxi 2 reorders its bucket.
        idx.remove_taxi(TaxiId(2));
        let snap = idx.snapshot_occupancy();

        let mut fresh = GridTaxiIndex::new(&g, 250.0, 4);
        fresh.restore_occupancy(&snap).expect("restore succeeds");
        assert_eq!(fresh.snapshot_occupancy(), snap, "canonical bytes round trip");
        assert_eq!(fresh.indexed_taxis(), idx.indexed_taxis());
        // Visit order (bucket order) is preserved exactly.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        idx.visit_in_range(&g.point(NodeId(0)), 1e6, |t| a.push(t));
        fresh.visit_in_range(&g.point(NodeId(0)), 1e6, |t| b.push(t));
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_restore_rejects_inconsistency() {
        let (g, mut idx) = setup();
        idx.update_taxi(&Taxi::new(TaxiId(0), 4, NodeId(0)), &g, 0.0);
        let snap = idx.snapshot_occupancy();

        // Wrong geometry (different cell size → different shape).
        let mut other = GridTaxiIndex::new(&g, 900.0, 1);
        assert!(other.restore_occupancy(&snap).is_err());
        // Wrong fleet size.
        let mut other = GridTaxiIndex::new(&g, 250.0, 3);
        assert!(other.restore_occupancy(&snap).is_err());

        // Bucket entry without a matching per-taxi cell.
        let mut enc = Encoder::new();
        let shape = idx.cells.len();
        enc.usize(shape);
        enc.seq(&[TaxiId(0)]);
        for _ in 1..shape {
            enc.seq::<TaxiId>(&[]);
        }
        enc.usize(1);
        Option::<u32>::None.encode(&mut enc);
        let mut fresh = GridTaxiIndex::new(&g, 250.0, 1);
        assert!(fresh.restore_occupancy(&enc.into_bytes()).is_err());

        // Truncated payload.
        assert!(fresh.restore_occupancy(&snap[..snap.len() - 1]).is_err());
    }

    #[test]
    fn remove_clears() {
        let (g, mut idx) = setup();
        let t = Taxi::new(TaxiId(0), 4, NodeId(0));
        idx.update_taxi(&t, &g, 0.0);
        idx.remove_taxi(TaxiId(0));
        idx.remove_taxi(TaxiId(0)); // idempotent
        let mut any = false;
        idx.visit_in_range(&g.point(NodeId(0)), 5000.0, |_| any = true);
        assert!(!any);
        assert!(idx.memory_bytes() > 0);
    }
}
