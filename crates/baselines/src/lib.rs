//! Baseline dispatch schemes mT-Share is evaluated against (Sec. V-A2).
//!
//! - [`NoSharing`]: the regular taxi service (nearest vacant taxi, no
//!   sharing);
//! - [`TShare`]: grid index + dual-side search, first-valid candidate
//!   (Ma et al., ICDE'13);
//! - [`PGreedyDp`]: grid index + optimal O(m²) DP insertion, global
//!   minimum detour (Tong et al., VLDB'18).
//!
//! All three implement the same [`mtshare_model::DispatchScheme`] trait as
//! mT-Share and run against the same shared path cache / cost oracle.

#![warn(missing_docs)]

mod common;
pub mod grid_index;
pub mod no_sharing;
pub mod pgreedy_dp;
pub mod t_share;
#[cfg(test)]
pub(crate) mod testutil;

pub use grid_index::GridTaxiIndex;
pub use no_sharing::NoSharing;
pub use pgreedy_dp::{best_insertion_dp, BestInsertion, PGreedyDp};
pub use t_share::TShare;
