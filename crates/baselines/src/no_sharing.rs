//! No-Sharing: the regular taxi service baseline (Sec. V-A2).
//!
//! Assigns each request to the geographically nearest *vacant* taxi within
//! the searching range γ; the taxi serves the trip exclusively and becomes
//! available again after the drop-off.

use crate::common::shortest_legs;
use crate::grid_index::GridTaxiIndex;
use mtshare_model::{
    Assignment, DispatchOutcome, DispatchScheme, DpEngine, EngineStats, RideRequest,
    ScheduleEngine, Taxi, TaxiId, Time, World,
};
use mtshare_road::RoadNetwork;
use std::sync::Arc;

/// The No-Sharing baseline.
pub struct NoSharing {
    index: GridTaxiIndex,
    engine: Arc<dyn ScheduleEngine>,
    /// Searching range γ in metres (paper default 2.5 km).
    gamma_m: f64,
    /// Constant taxi speed, m/s.
    speed_mps: f64,
}

impl NoSharing {
    /// Creates the scheme with the default γ = 2.5 km at 15 km/h.
    pub fn new(graph: &RoadNetwork, n_taxis: usize) -> Self {
        Self::with_params(graph, n_taxis, 2500.0, 15.0 / 3.6)
    }

    /// Creates the scheme with explicit parameters.
    pub fn with_params(graph: &RoadNetwork, n_taxis: usize, gamma_m: f64, speed_mps: f64) -> Self {
        Self {
            index: GridTaxiIndex::new(graph, 500.0, n_taxis),
            engine: Arc::new(DpEngine),
            gamma_m,
            speed_mps,
        }
    }

    /// This scheme scoring through `engine` (`--scheduler dp|dtree`);
    /// results are bit-identical across engines.
    pub fn with_engine(mut self, engine: Arc<dyn ScheduleEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The searching range γ for a request at `now` (bounded by the rider's
    /// waiting budget like all schemes).
    fn gamma(&self, req: &RideRequest, now: Time) -> f64 {
        (self.speed_mps * req.wait_budget(now).max(0.0)).min(self.gamma_m)
    }
}

impl DispatchScheme for NoSharing {
    fn name(&self) -> &str {
        "No-Sharing"
    }

    fn install(&mut self, world: &World<'_>) {
        for t in world.taxis {
            self.index.update_taxi(t, world.graph, 0.0);
        }
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        let origin_pt = world.graph.point(req.origin);
        let gamma = self.gamma(req, now);
        // Vacant taxis in range, nearest first.
        let mut candidates: Vec<(f64, TaxiId)> = Vec::new();
        self.index.visit_in_range(&origin_pt, gamma, |id| {
            let taxi = world.taxi(id);
            if taxi.alive && taxi.is_vacant() {
                let d = world.graph.point(taxi.position_at(now)).distance_m(&origin_pt);
                if d <= gamma {
                    candidates.push((d, id));
                }
            }
        });
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

        let examined = candidates.len();
        for (_, id) in candidates {
            let taxi = world.taxi(id);
            let pos = taxi.position_at(now);
            // A vacant taxi has exactly one insertion pair (pickup then
            // drop-off at the front), so `first_feasible` evaluates the
            // direct-trip schedule the historical inline code built.
            let mut routed = None;
            let found = self.engine.first_feasible(taxi, req, now, world, &mut |schedule, _| {
                match shortest_legs(world, pos, schedule) {
                    Some(legs) => {
                        routed = Some(legs);
                        true
                    }
                    None => false,
                }
            });
            if let Some((schedule, eval)) = found {
                return DispatchOutcome {
                    assignment: Some(Assignment {
                        taxi: id,
                        schedule,
                        legs: routed.expect("accepted instance was routed"),
                        detour_cost_s: eval.total_cost_s,
                    }),
                    candidates_examined: examined,
                    feasible_instances: 1,
                };
            }
        }
        DispatchOutcome::rejected(examined)
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.engine.after_assign(taxi, world);
        self.index.update_taxi(taxi, world.graph, taxi.location_time);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.engine.on_taxi_progress(taxi, world);
        self.index.update_taxi(taxi, world.graph, now);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, _world: &World<'_>) {
        self.engine.on_taxi_removed(taxi);
        self.index.remove_taxi(taxi.id);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        Some(self.index.indexed_taxis())
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.index.snapshot_occupancy())
    }

    fn restore_state(&mut self, bytes: &[u8], _world: &World<'_>) -> Result<(), String> {
        self.engine.invalidate_all();
        self.index.restore_occupancy(bytes)
    }

    fn index_memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn scheduler_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Bench;
    use mtshare_road::NodeId;

    #[test]
    fn assigns_nearest_vacant_taxi() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(399)); // far
        b.add_taxi(NodeId(22)); // near
        let mut s = NoSharing::new(&b.graph, 2);
        b.install(&mut s);
        let req = b.make_request(21, 200, 0.0, 1.3);
        let out = b.dispatch(&mut s, &req, 0.0);
        let a = out.assignment.expect("nearest vacant taxi serves");
        assert_eq!(a.taxi, TaxiId(1));
        assert_eq!(a.schedule.len(), 2);
    }

    #[test]
    fn busy_taxis_never_selected() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(22));
        let mut s = NoSharing::new(&b.graph, 1);
        b.install(&mut s);
        let r1 = b.make_request(21, 399, 0.0, 1.3);
        let out = b.dispatch_and_commit(&mut s, &r1, 0.0);
        assert!(out);
        // Second request while the only taxi is busy: rejected.
        let r2 = b.make_request(23, 300, 1.0, 1.3);
        let out = b.dispatch(&mut s, &r2, 1.0);
        assert!(out.assignment.is_none());
    }

    #[test]
    fn respects_search_range() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(399));
        let mut s = NoSharing::with_params(&b.graph, 1, 150.0, 15.0 / 3.6);
        b.install(&mut s);
        let req = b.make_request(0, 40, 0.0, 2.0);
        let out = b.dispatch(&mut s, &req, 0.0);
        assert!(out.assignment.is_none());
        assert_eq!(out.candidates_examined, 0);
    }
}
