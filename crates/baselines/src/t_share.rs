//! T-Share (Ma et al., ICDE'13 / TKDE'15): the grid + dual-side-search
//! baseline (Sec. V-A2).
//!
//! Candidate taxis are found with a **dual-side search**: the taxi must be
//! within the searching range γ of the request's *origin* and within the
//! delivery window's reach of its *destination*. This double constraint is
//! what "mistakenly removes many possible taxis" (Sec. V-B1, Table III).
//! T-Share then returns the **first valid** candidate (nearest first), not
//! the minimum-detour one.

use crate::common::{committed_load, remaining_cost, shortest_legs};
use crate::grid_index::GridTaxiIndex;
use mtshare_model::{
    Assignment, DispatchOutcome, DispatchScheme, DpEngine, EngineStats, RideRequest,
    ScheduleEngine, Taxi, TaxiId, Time, World,
};
use mtshare_road::RoadNetwork;
use std::sync::Arc;

/// The T-Share baseline.
pub struct TShare {
    index: GridTaxiIndex,
    engine: Arc<dyn ScheduleEngine>,
    gamma_m: f64,
    speed_mps: f64,
}

impl TShare {
    /// Creates the scheme with the default γ = 2.5 km at 15 km/h.
    pub fn new(graph: &RoadNetwork, n_taxis: usize) -> Self {
        Self::with_params(graph, n_taxis, 2500.0, 15.0 / 3.6)
    }

    /// Creates the scheme with explicit parameters.
    pub fn with_params(graph: &RoadNetwork, n_taxis: usize, gamma_m: f64, speed_mps: f64) -> Self {
        Self {
            index: GridTaxiIndex::new(graph, 500.0, n_taxis),
            engine: Arc::new(DpEngine),
            gamma_m,
            speed_mps,
        }
    }

    /// This scheme scoring through `engine` (`--scheduler dp|dtree`);
    /// results are bit-identical across engines.
    pub fn with_engine(mut self, engine: Arc<dyn ScheduleEngine>) -> Self {
        self.engine = engine;
        self
    }
}

impl DispatchScheme for TShare {
    fn name(&self) -> &str {
        "T-Share"
    }

    fn install(&mut self, world: &World<'_>) {
        for t in world.taxis {
            self.index.update_taxi(t, world.graph, 0.0);
        }
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        let origin_pt = world.graph.point(req.origin);
        let dest_pt = world.graph.point(req.destination);
        let gamma = (self.speed_mps * req.wait_budget(now).max(0.0)).min(self.gamma_m);
        // Destination-side reach: how far a taxi may currently be from the
        // destination and still deliver before the deadline.
        let dest_reach = self.speed_mps * (req.deadline - now).max(0.0);

        let mut candidates: Vec<(f64, TaxiId)> = Vec::new();
        self.index.visit_in_range(&origin_pt, gamma, |id| {
            let taxi = world.taxi(id);
            if !taxi.alive {
                return;
            }
            let p = world.graph.point(taxi.position_at(now));
            let d_origin = p.distance_m(&origin_pt);
            if d_origin > gamma {
                return;
            }
            // Dual side. Vacant taxis: the destination must be reachable
            // from their position inside the delivery window. Busy taxis:
            // their *committed route* must approach the destination within
            // γ — projected routes are all the destination-side grid
            // search sees, which is exactly why the dual-side search
            // "mistakenly removes many possible taxis" (Sec. V-B1).
            match &taxi.route {
                None => {
                    if p.distance_m(&dest_pt) > dest_reach {
                        return;
                    }
                }
                Some(route) => {
                    let near_dest = route
                        .nodes_in_window(now, req.deadline)
                        .step_by(3)
                        .any(|(n, _)| world.graph.point(n).distance_m(&dest_pt) <= gamma);
                    if !near_dest {
                        return;
                    }
                }
            }
            if committed_load(taxi, world) + req.passengers as u32 > taxi.capacity as u32 {
                return;
            }
            candidates.push((d_origin, id));
        });
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        let examined = candidates.len();

        // First valid candidate wins; within a candidate, the first
        // feasible insertion in pinned `(i, j)` order wins (no min-detour
        // optimization). Rejecting an instance whose legs cannot be routed
        // abandons pickup position `i` — the engine's `first_feasible`
        // replicates the historical `continue 'positions` behaviour.
        for &(_, id) in &candidates {
            let taxi = world.taxi(id);
            let pos = taxi.position_at(now);
            let mut routed = None;
            let found = self.engine.first_feasible(taxi, req, now, world, &mut |schedule, _| {
                match shortest_legs(world, pos, schedule) {
                    Some(legs) => {
                        routed = Some(legs);
                        true
                    }
                    None => false,
                }
            });
            if let Some((schedule, eval)) = found {
                return DispatchOutcome {
                    assignment: Some(Assignment {
                        taxi: id,
                        schedule,
                        legs: routed.expect("accepted instance was routed"),
                        detour_cost_s: eval.total_cost_s - remaining_cost(taxi, now),
                    }),
                    candidates_examined: examined,
                    feasible_instances: 1,
                };
            }
        }
        DispatchOutcome::rejected(examined)
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.engine.after_assign(taxi, world);
        self.index.update_taxi(taxi, world.graph, taxi.location_time);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.engine.on_taxi_progress(taxi, world);
        self.index.update_taxi(taxi, world.graph, now);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, _world: &World<'_>) {
        self.engine.on_taxi_removed(taxi);
        self.index.remove_taxi(taxi.id);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        Some(self.index.indexed_taxis())
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.index.snapshot_occupancy())
    }

    fn restore_state(&mut self, bytes: &[u8], _world: &World<'_>) -> Result<(), String> {
        self.engine.invalidate_all();
        self.index.restore_occupancy(bytes)
    }

    fn index_memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn scheduler_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Bench;
    use mtshare_road::NodeId;

    #[test]
    fn serves_simple_request() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(22));
        let mut s = TShare::new(&b.graph, 1);
        b.install(&mut s);
        let req = b.make_request(21, 120, 0.0, 1.5);
        let out = b.dispatch(&mut s, &req, 0.0);
        assert!(out.assignment.is_some());
        assert_eq!(out.candidates_examined, 1);
    }

    #[test]
    fn returns_first_valid_not_best() {
        let mut b = Bench::new();
        // Taxi 0 sits exactly at the origin; taxi 1 a block away.
        b.add_taxi(NodeId(42));
        b.add_taxi(NodeId(22));
        let mut s = TShare::new(&b.graph, 2);
        b.install(&mut s);
        let req = b.make_request(42, 200, 0.0, 2.0);
        let out = b.dispatch(&mut s, &req, 0.0);
        let a = out.assignment.unwrap();
        // Nearest-by-distance candidate is tried first and is valid.
        assert_eq!(a.taxi, TaxiId(0));
    }

    #[test]
    fn dual_side_search_removes_far_destination_taxis() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(21));
        let mut s = TShare::new(&b.graph, 1);
        b.install(&mut s);
        // Tight deadline: taxi near the origin but the destination-side
        // window cannot be met from its current position.
        let req = b.make_request(20, 399, 0.0, 1.01);
        let out = b.dispatch(&mut s, &req, 0.0);
        // The candidate either fails the dual-side test or the deadline.
        assert!(out.assignment.is_none());
    }

    #[test]
    fn shares_when_capacity_allows() {
        let mut b = Bench::new();
        b.add_taxi(NodeId(0));
        let mut s = TShare::new(&b.graph, 1);
        b.install(&mut s);
        let r1 = b.make_request(1, 399, 0.0, 2.0);
        assert!(b.dispatch_and_commit(&mut s, &r1, 0.0));
        let r2 = b.make_request(23, 380, 5.0, 2.0);
        let out = b.dispatch(&mut s, &r2, 5.0);
        assert!(out.assignment.is_some(), "aligned second rider should share");
        assert_eq!(out.assignment.unwrap().schedule.len(), 4);
    }
}
