//! pGreedyDP (Tong et al., VLDB'18): grid index + dynamic-programming
//! insertion (Sec. V-A2).
//!
//! Candidates are *all* taxis within γ of the request's origin (no
//! direction or destination filtering — the largest candidate sets of
//! Table III). For each candidate the optimal insertion positions are found
//! with the O(m²) DP of the unified route-planning framework: prefix
//! arrival times, suffix deadline slacks, and range load maxima let every
//! (i, j) pair be checked in O(1).

use crate::common::{remaining_cost, shortest_legs};
use crate::grid_index::GridTaxiIndex;
use mtshare_model::{
    Assignment, DispatchOutcome, DispatchScheme, DpEngine, EngineStats, RideRequest,
    ScheduleEngine, Taxi, TaxiId, Time, World,
};
use mtshare_road::RoadNetwork;
use std::sync::Arc;

/// The pGreedyDP baseline.
pub struct PGreedyDp {
    index: GridTaxiIndex,
    engine: Arc<dyn ScheduleEngine>,
    gamma_m: f64,
    speed_mps: f64,
}

pub use mtshare_model::{best_insertion as best_insertion_dp, BestInsertion};

impl PGreedyDp {
    /// Creates the scheme with the default γ = 2.5 km at 15 km/h.
    pub fn new(graph: &RoadNetwork, n_taxis: usize) -> Self {
        Self::with_params(graph, n_taxis, 2500.0, 15.0 / 3.6)
    }

    /// Creates the scheme with explicit parameters.
    pub fn with_params(graph: &RoadNetwork, n_taxis: usize, gamma_m: f64, speed_mps: f64) -> Self {
        Self {
            index: GridTaxiIndex::new(graph, 500.0, n_taxis),
            engine: Arc::new(DpEngine),
            gamma_m,
            speed_mps,
        }
    }

    /// This scheme scoring through `engine` (`--scheduler dp|dtree`);
    /// results are bit-identical across engines.
    pub fn with_engine(mut self, engine: Arc<dyn ScheduleEngine>) -> Self {
        self.engine = engine;
        self
    }
}

impl DispatchScheme for PGreedyDp {
    fn name(&self) -> &str {
        "pGreedyDP"
    }

    fn install(&mut self, world: &World<'_>) {
        for t in world.taxis {
            self.index.update_taxi(t, world.graph, 0.0);
        }
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        let origin_pt = world.graph.point(req.origin);
        let gamma = (self.speed_mps * req.wait_budget(now).max(0.0)).min(self.gamma_m);
        let mut candidates: Vec<TaxiId> = Vec::new();
        self.index.visit_in_range(&origin_pt, gamma, |id| {
            let taxi = world.taxi(id);
            if taxi.alive
                && world.graph.point(taxi.position_at(now)).distance_m(&origin_pt) <= gamma
            {
                candidates.push(id);
            }
        });
        let examined = candidates.len();

        let mut best: Option<(TaxiId, BestInsertion)> = None;
        for &id in &candidates {
            let taxi = world.taxi(id);
            if let Some(ins) = self
                .engine
                .best_insertion(taxi, req, now, world, &mut |a, b| world.oracle.cost(a, b))
            {
                if best.is_none_or(|(_, b)| ins.delta_s < b.delta_s) {
                    best = Some((id, ins));
                }
            }
        }

        let Some((id, ins)) = best else {
            return DispatchOutcome::rejected(examined);
        };
        let taxi = world.taxi(id);
        let pos = taxi.position_at(now);
        let schedule = taxi.schedule.with_insertion(req, ins.i, ins.j);
        let Some(legs) = shortest_legs(world, pos, &schedule) else {
            return DispatchOutcome::rejected(examined);
        };
        let total: f64 = legs.iter().map(|l| l.cost_s).sum();
        DispatchOutcome {
            assignment: Some(Assignment {
                taxi: id,
                schedule,
                legs,
                detour_cost_s: total - remaining_cost(taxi, now),
            }),
            candidates_examined: examined,
            feasible_instances: 1,
        }
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.engine.after_assign(taxi, world);
        self.index.update_taxi(taxi, world.graph, taxi.location_time);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.engine.on_taxi_progress(taxi, world);
        self.index.update_taxi(taxi, world.graph, now);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, _world: &World<'_>) {
        self.engine.on_taxi_removed(taxi);
        self.index.remove_taxi(taxi.id);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        Some(self.index.indexed_taxis())
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.index.snapshot_occupancy())
    }

    fn restore_state(&mut self, bytes: &[u8], _world: &World<'_>) -> Result<(), String> {
        self.engine.invalidate_all();
        self.index.restore_occupancy(bytes)
    }

    fn index_memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn scheduler_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Bench;
    use mtshare_model::{evaluate_schedule, EvalContext};

    /// Brute-force oracle: enumerate every insertion with
    /// `evaluate_schedule` and return the min added cost.
    fn brute_force(
        taxi: &Taxi,
        req: &RideRequest,
        now: f64,
        world: &World<'_>,
    ) -> Option<(usize, usize, f64)> {
        let pos = taxi.position_at(now);
        let remaining: f64 = {
            let mut c = 0.0;
            let mut from = pos;
            for ev in taxi.schedule.events() {
                c += world.oracle.cost(from, ev.node)?;
                from = ev.node;
            }
            c
        };
        let requests = world.requests;
        let lookup = |r| requests.get(r);
        let ectx = EvalContext {
            start_node: pos,
            start_time: now,
            initial_load: taxi.onboard_load(world.requests),
            capacity: taxi.capacity as u32,
            requests: &lookup,
        };
        let m = taxi.schedule.len();
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..=m {
            for j in (i + 1)..=(m + 1) {
                let s = taxi.schedule.with_insertion(req, i, j);
                if let Some(eval) = evaluate_schedule(&s, &ectx, |a, b| world.oracle.cost(a, b)) {
                    // Also require the pickup deadline (the DP enforces it).
                    let pickup_idx = i;
                    if eval.arrival_times[pickup_idx] > req.pickup_deadline() + 1e-6 {
                        continue;
                    }
                    let delta = eval.total_cost_s - remaining;
                    if best.is_none_or(|(_, _, b)| delta < b) {
                        best = Some((i, j, delta));
                    }
                }
            }
        }
        best
    }

    #[test]
    fn dp_matches_brute_force_on_busy_taxi() {
        let mut b = Bench::new();
        let tid = b.add_taxi(mtshare_road::NodeId(0));
        let mut s = PGreedyDp::new(&b.graph, 1);
        b.install(&mut s);
        // Build up a schedule with two committed requests.
        let r1 = b.make_request(1, 399, 0.0, 2.0);
        assert!(b.dispatch_and_commit(&mut s, &r1, 0.0));
        let r2 = b.make_request(22, 380, 1.0, 2.0);
        assert!(b.dispatch_and_commit(&mut s, &r2, 1.0));
        // Probe DP vs brute force for a third request.
        let r3 = b.make_request(44, 360, 2.0, 2.0);
        let world = b.world();
        let taxi = world.taxi(tid);
        let dp = best_insertion_dp(taxi, &r3, 2.0, &world, |x, y| world.oracle.cost(x, y));
        let bf = brute_force(taxi, &r3, 2.0, &world);
        match (dp, bf) {
            (Some(d), Some((_, _, bcost))) => {
                assert!(
                    (d.delta_s - bcost).abs() < 1.0,
                    "dp delta {} vs brute force {}",
                    d.delta_s,
                    bcost
                );
            }
            (None, None) => {}
            (d, f) => panic!("dp {d:?} vs brute {f:?} disagree on feasibility"),
        }
    }

    #[test]
    fn dp_on_vacant_taxi_is_direct_trip() {
        let mut b = Bench::new();
        let tid = b.add_taxi(mtshare_road::NodeId(0));
        let req = b.make_request(21, 200, 0.0, 1.5);
        let world = b.world();
        let taxi = world.taxi(tid);
        let ins =
            best_insertion_dp(taxi, &req, 0.0, &world, |x, y| world.oracle.cost(x, y)).unwrap();
        assert_eq!((ins.i, ins.j), (0, 1));
        let expect = world.oracle.cost(mtshare_road::NodeId(0), req.origin).unwrap()
            + world.oracle.cost(req.origin, req.destination).unwrap();
        assert!((ins.delta_s - expect).abs() < 1e-6);
    }

    #[test]
    fn dp_rejects_infeasible_deadline() {
        let mut b = Bench::new();
        let tid = b.add_taxi(mtshare_road::NodeId(399));
        let req = b.make_request(0, 20, 0.0, 1.01);
        let world = b.world();
        let taxi = world.taxi(tid);
        assert!(
            best_insertion_dp(taxi, &req, 0.0, &world, |x, y| world.oracle.cost(x, y)).is_none()
        );
    }

    #[test]
    fn scheme_picks_global_minimum_detour() {
        let mut b = Bench::new();
        b.add_taxi(mtshare_road::NodeId(45));
        b.add_taxi(mtshare_road::NodeId(22));
        let mut s = PGreedyDp::new(&b.graph, 2);
        b.install(&mut s);
        let req = b.make_request(21, 200, 0.0, 2.0);
        let out = b.dispatch(&mut s, &req, 0.0);
        let a = out.assignment.unwrap();
        assert_eq!(out.candidates_examined, 2);
        // Taxi 1 at node 22 is closer to origin 21 → smaller detour.
        assert_eq!(a.taxi, TaxiId(1));
    }

    #[test]
    fn candidate_set_ignores_direction() {
        // A taxi heading opposite is still a candidate for pGreedyDP
        // (unlike mT-Share) — it is only rejected if infeasible.
        let mut b = Bench::new();
        let tid = b.add_taxi(mtshare_road::NodeId(22));
        let mut s = PGreedyDp::new(&b.graph, 1);
        b.install(&mut s);
        let r1 = b.make_request(22, 0, 0.0, 2.0); // heading SW
        assert!(b.dispatch_and_commit(&mut s, &r1, 0.0));
        let _ = tid;
        let r2 = b.make_request(23, 399, 1.0, 3.0); // heading NE
        let out = b.dispatch(&mut s, &r2, 1.0);
        assert_eq!(out.candidates_examined, 1, "opposite-direction taxi still examined");
    }
}
