//! The dispatch-scheme interface every ridesharing policy implements.
//!
//! The simulator owns the fleet and the clock; a scheme is a matcher that,
//! given a request and a read-only [`World`] view, proposes an
//! [`Assignment`] (a full new schedule + routed legs for one taxi). The
//! simulator commits the assignment and notifies the scheme so it can
//! refresh its indexes. mT-Share and all baselines implement this trait,
//! which is what keeps the Sec. V comparisons apples-to-apples.

use crate::request::{RequestStore, RideRequest};
use crate::schedule::Schedule;
use crate::taxi::{Taxi, TaxiId};
use crate::Time;
use mtshare_obs::Obs;
use mtshare_road::RoadNetwork;
use mtshare_routing::{HotNodeOracle, Path, PathCache};
use std::sync::Arc;

/// Read-only view of the simulation handed to schemes.
pub struct World<'a> {
    /// The road network.
    pub graph: &'a Arc<RoadNetwork>,
    /// Shared shortest-path cache for route materialization.
    pub cache: &'a PathCache,
    /// Shared O(1) leg-cost oracle over active request endpoints (the
    /// stand-in for the paper's cached all-pairs table; see DESIGN.md).
    pub oracle: &'a HotNodeOracle,
    /// Every taxi, indexed by [`TaxiId`].
    pub taxis: &'a [Taxi],
    /// Every request revealed so far, indexed by request id.
    pub requests: &'a RequestStore,
}

impl<'a> World<'a> {
    /// The taxi with id `id`.
    #[inline]
    pub fn taxi(&self, id: TaxiId) -> &'a Taxi {
        &self.taxis[id.index()]
    }
}

/// A committed match: the chosen taxi plus its complete new plan.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The taxi that will serve the request.
    pub taxi: TaxiId,
    /// The taxi's full new schedule (existing events + the new pick-up and
    /// drop-off).
    pub schedule: Schedule,
    /// One routed leg per schedule event, starting from the taxi's current
    /// position.
    pub legs: Vec<Path>,
    /// Detour cost `cost(R') − cost(R)` in seconds (Eq. 4).
    pub detour_cost_s: f64,
}

/// Result of a dispatch attempt, including instrumentation the evaluation
/// reports (Table III counts candidate taxis per request).
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// The match, if one was found.
    pub assignment: Option<Assignment>,
    /// Number of candidate taxis whose schedules were examined.
    pub candidates_examined: usize,
    /// Number of insertion instances that satisfied every constraint
    /// (deadline-feasible positions across all candidates). Purely
    /// informational telemetry; deterministic for a given request and
    /// world snapshot.
    pub feasible_instances: usize,
}

impl DispatchOutcome {
    /// A failed dispatch that examined `candidates_examined` taxis.
    pub fn rejected(candidates_examined: usize) -> Self {
        Self { assignment: None, candidates_examined, feasible_instances: 0 }
    }
}

/// Deterministic preference order between two scored assignments: lower
/// detour wins, ties broken by taxi id. Schemes that score candidates in
/// parallel must rank with this total order (and process requests in
/// request-id order) so the chosen winner is independent of thread count
/// and scheduling; `f64::total_cmp` keeps it total even for NaN scores.
pub fn assignment_cmp(a: &Assignment, b: &Assignment) -> std::cmp::Ordering {
    a.detour_cost_s.total_cmp(&b.detour_cost_s).then(a.taxi.cmp(&b.taxi))
}

/// One request's speculative dispatch result, scored against a frozen
/// world snapshot at the start of a batch window, plus the fingerprint
/// needed to decide at commit time whether the result is still valid.
#[derive(Debug, Clone)]
pub struct SpeculativeOutcome {
    /// The dispatch result computed against the snapshot.
    pub outcome: DispatchOutcome,
    /// The candidate set examined, in the scheme's deterministic order.
    pub candidates: Vec<TaxiId>,
    /// Each candidate's `route_version` at speculation time, parallel to
    /// `candidates`. An earlier commit in the batch bumps the version of
    /// the taxi it re-plans, invalidating dependent speculations.
    pub candidate_versions: Vec<u64>,
}

/// One scored row of a rolling-horizon batch window's cost matrix: a
/// request's candidate taxis (in the scheme's deterministic order) with
/// the marginal insertion cost of each, plus the version fingerprint for
/// commit-time validation (same contract as [`SpeculativeOutcome`]).
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Candidate taxis examined, in the scheme's deterministic order.
    pub candidates: Vec<TaxiId>,
    /// Each candidate's `route_version` at scoring time, parallel to
    /// `candidates`.
    pub candidate_versions: Vec<u64>,
    /// Marginal insertion detour per candidate, seconds, parallel to
    /// `candidates`; `f64::INFINITY` marks an infeasible insertion.
    pub costs: Vec<f64>,
    /// Number of finite (deadline-feasible) entries in `costs`.
    pub feasible: usize,
}

/// A ridesharing dispatch policy.
pub trait DispatchScheme {
    /// Human-readable scheme name (used in experiment tables).
    fn name(&self) -> &str;

    /// Called once before the scenario starts so the scheme can index the
    /// initial fleet.
    fn install(&mut self, world: &World<'_>);

    /// Hands the scheme a telemetry bus. Schemes that instrument their
    /// pipeline (stage spans, filter/insertion counters) keep the handle;
    /// the default ignores it. Called by the simulator before `install`.
    fn set_obs(&mut self, _obs: Obs) {}

    /// Matches an online request released at `now`.
    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome;

    /// Matches an offline request encountered by taxi `encountered_by` at
    /// `now`. Per Sec. IV-C2 the encountering taxi is tried first; the
    /// default falls back to a regular dispatch (the server assigns another
    /// taxi when the encountering one cannot serve it).
    fn dispatch_offline(
        &mut self,
        req: &RideRequest,
        _encountered_by: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        self.dispatch(req, now, world)
    }

    /// Notifies the scheme that `taxi`'s plan changed (after an assignment
    /// was committed) so indexes can be refreshed.
    fn after_assign(&mut self, _taxi: &Taxi, _world: &World<'_>) {}

    /// Notifies the scheme that `taxi` completed a schedule event (its
    /// position and load changed).
    fn on_taxi_progress(&mut self, _taxi: &Taxi, _now: Time, _world: &World<'_>) {}

    /// Notifies the scheme that `taxi` permanently left service (e.g. a
    /// breakdown). The scheme must reconcile the taxi out of every index
    /// so candidate search never returns it again.
    fn on_taxi_removed(&mut self, _taxi: &Taxi, _world: &World<'_>) {}

    /// The taxis currently present in the scheme's candidate indexes, or
    /// `None` when the scheme keeps no enumerable index. Used by the
    /// simulator's `validate_world` checker to verify index/world
    /// agreement (a dead taxi must never be indexed).
    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        None
    }

    /// Serializes the scheme's private mutable index state for a
    /// checkpoint, or `None` when the scheme keeps no history-dependent
    /// state (recovery then re-runs [`DispatchScheme::install`] instead).
    ///
    /// Index internals — bucket order, recycled slots, running sums — leak
    /// into candidate-set composition, so a warm restart must restore them
    /// *faithfully* rather than rebuild them from world state: a rebuilt
    /// index could enumerate candidates in a different order and change
    /// every dispatch decision after the resume point.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`DispatchScheme::snapshot_state`] on a
    /// freshly constructed scheme. Called instead of `install` when
    /// resuming from a checkpoint; `world` carries the already-restored
    /// fleet for validation. Must reject (not mis-restore) inconsistent or
    /// mismatched bytes.
    fn restore_state(&mut self, _bytes: &[u8], _world: &World<'_>) -> Result<(), String> {
        Err(format!("scheme `{}` has no state snapshot support", self.name()))
    }

    /// Approximate resident memory of the scheme's private indexes, bytes
    /// (Table IV).
    fn index_memory_bytes(&self) -> usize {
        0
    }

    /// Whether this scheme plans probabilistic routes to hunt offline
    /// requests (mT-Share_pro).
    fn uses_probabilistic_routing(&self) -> bool {
        false
    }

    /// Cumulative counters of the scheme's [`crate::ScheduleEngine`]
    /// for the summary's `profiling.dtree` block. All-zero under the
    /// plain DP engine (and for schemes without a pluggable engine).
    fn scheduler_stats(&self) -> crate::EngineStats {
        crate::EngineStats::default()
    }

    /// Speculatively scores a batch of online requests against the frozen
    /// `world` snapshot, each at its own release time. Results must be
    /// *identical* to what a sequence of [`DispatchScheme::dispatch`]
    /// calls would produce on the same snapshot — the simulator commits
    /// them in request order, revalidating each via
    /// [`DispatchScheme::validate_speculative`] first. Returns `None` when
    /// the scheme has no speculative path (the simulator then falls back
    /// to sequential dispatch).
    fn dispatch_batch_speculative(
        &mut self,
        _reqs: &[RideRequest],
        _world: &World<'_>,
    ) -> Option<Vec<SpeculativeOutcome>> {
        None
    }

    /// Commit-time check for one speculative result: recompute the
    /// candidate fingerprint against the *current* world and return
    /// whether `spec` still holds (same candidates, none re-planned since
    /// speculation). On `false` the simulator re-dispatches sequentially.
    fn validate_speculative(
        &mut self,
        _req: &RideRequest,
        _now: Time,
        _world: &World<'_>,
        _spec: &SpeculativeOutcome,
    ) -> bool {
        false
    }

    /// Scores a whole batch window against the frozen `world`: one cost
    /// row per request, all evaluated at `now` (the window flush time).
    /// Rows must be a pure function of `(reqs, now, world)` — the
    /// simulator feeds them to a deterministic assignment solver and the
    /// trace-equivalence guarantee rides on it. Returns `None` when the
    /// scheme has no batch-window path (the simulator then dispatches
    /// the window members sequentially).
    fn score_window(
        &mut self,
        _reqs: &[RideRequest],
        _now: Time,
        _world: &World<'_>,
    ) -> Option<Vec<WindowRow>> {
        None
    }

    /// Dispatches `req` restricted to the single `taxi` an assignment
    /// solver picked for it, re-deriving and materializing the best
    /// insertion against the *current* world — the revalidated-commit
    /// path for batch winners. The default rejects, matching the
    /// [`DispatchScheme::score_window`] default of "no batch path".
    fn dispatch_to(
        &mut self,
        _req: &RideRequest,
        _taxi: TaxiId,
        _now: Time,
        _world: &World<'_>,
    ) -> DispatchOutcome {
        DispatchOutcome::rejected(1)
    }
}

impl DispatchScheme for Box<dyn DispatchScheme> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn install(&mut self, world: &World<'_>) {
        self.as_mut().install(world);
    }
    fn set_obs(&mut self, obs: Obs) {
        self.as_mut().set_obs(obs);
    }
    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        self.as_mut().dispatch(req, now, world)
    }
    fn dispatch_offline(
        &mut self,
        req: &RideRequest,
        encountered_by: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        self.as_mut().dispatch_offline(req, encountered_by, now, world)
    }
    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.as_mut().after_assign(taxi, world);
    }
    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.as_mut().on_taxi_progress(taxi, now, world);
    }
    fn on_taxi_removed(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.as_mut().on_taxi_removed(taxi, world);
    }
    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        self.as_ref().indexed_taxis()
    }
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        self.as_ref().snapshot_state()
    }
    fn restore_state(&mut self, bytes: &[u8], world: &World<'_>) -> Result<(), String> {
        self.as_mut().restore_state(bytes, world)
    }
    fn index_memory_bytes(&self) -> usize {
        self.as_ref().index_memory_bytes()
    }
    fn uses_probabilistic_routing(&self) -> bool {
        self.as_ref().uses_probabilistic_routing()
    }
    fn scheduler_stats(&self) -> crate::EngineStats {
        self.as_ref().scheduler_stats()
    }
    fn dispatch_batch_speculative(
        &mut self,
        reqs: &[RideRequest],
        world: &World<'_>,
    ) -> Option<Vec<SpeculativeOutcome>> {
        self.as_mut().dispatch_batch_speculative(reqs, world)
    }
    fn validate_speculative(
        &mut self,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        spec: &SpeculativeOutcome,
    ) -> bool {
        self.as_mut().validate_speculative(req, now, world, spec)
    }
    fn score_window(
        &mut self,
        reqs: &[RideRequest],
        now: Time,
        world: &World<'_>,
    ) -> Option<Vec<WindowRow>> {
        self.as_mut().score_window(reqs, now, world)
    }
    fn dispatch_to(
        &mut self,
        req: &RideRequest,
        taxi: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        self.as_mut().dispatch_to(req, taxi, now, world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig, NodeId};

    struct Greedy;

    impl DispatchScheme for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn install(&mut self, _world: &World<'_>) {}
        fn dispatch(
            &mut self,
            _req: &RideRequest,
            _now: Time,
            world: &World<'_>,
        ) -> DispatchOutcome {
            DispatchOutcome::rejected(world.taxis.len())
        }
    }

    #[test]
    fn trait_object_safety_and_defaults() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let requests = RequestStore::new();
        let world = World {
            graph: &graph,
            cache: &cache,
            oracle: &oracle,
            taxis: &taxis,
            requests: &requests,
        };
        let mut s: Box<dyn DispatchScheme> = Box::new(Greedy);
        s.install(&world);
        assert_eq!(s.name(), "greedy");
        assert_eq!(s.index_memory_bytes(), 0);
        assert!(!s.uses_probabilistic_routing());
        let req = RideRequest {
            id: crate::request::RequestId(0),
            release_time: 0.0,
            origin: NodeId(0),
            destination: NodeId(1),
            passengers: 1,
            deadline: 1e9,
            direct_cost_s: 1.0,
            offline: true,
        };
        let out = s.dispatch_offline(&req, TaxiId(0), 0.0, &world);
        assert!(out.assignment.is_none());
        assert_eq!(out.candidates_examined, 1);
        assert_eq!(world.taxi(TaxiId(0)).id, TaxiId(0));
    }
}
