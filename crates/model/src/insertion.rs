//! The O(m²) optimal-insertion operator.
//!
//! Given a taxi's committed schedule, finds the cheapest feasible pair of
//! positions for a new request's pick-up and drop-off while keeping the
//! existing event order — the primitive both mT-Share's taxi scheduling
//! (Alg. 1 of the paper) and pGreedyDP's DP insertion evaluate per
//! candidate. Prefix arrival times, suffix deadline slacks and running
//! load maxima make every (i, j) pair an O(1) check; results are
//! identical to brute-force enumeration over `evaluate_schedule`
//! (property-tested in `tests/insertion_oracle.rs`).

use crate::request::RideRequest;
use crate::schedule::EventKind;
use crate::taxi::Taxi;
use crate::{Time, World};
use mtshare_road::NodeId;

/// Best feasible insertion found for one taxi.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestInsertion {
    /// Pickup position for [`crate::Schedule::with_insertion`].
    pub i: usize,
    /// Drop-off position in the resulting sequence.
    pub j: usize,
    /// Added route cost in seconds (the detour ω of Eq. 4).
    pub delta_s: f64,
}

/// Finds the minimum-added-cost feasible insertion of `req` into `taxi`'s
/// schedule, or `None` when no feasible pair exists. `cost` is the
/// shortest-path oracle (`None` = unreachable).
pub fn best_insertion(
    taxi: &Taxi,
    req: &RideRequest,
    now: Time,
    world: &World<'_>,
    mut cost: impl FnMut(NodeId, NodeId) -> Option<f64>,
) -> Option<BestInsertion> {
    let events = taxi.schedule.events();
    let m = events.len();
    let capacity = taxi.capacity as u32;
    let p = req.passengers as u32;

    // Node sequence n_0..n_m and arrival times a_0..a_m.
    let mut nodes = Vec::with_capacity(m + 1);
    nodes.push(taxi.position_at(now));
    let mut arrivals = vec![now];
    for ev in events {
        let c = cost(*nodes.last().expect("non-empty"), ev.node)?;
        arrivals.push(arrivals.last().expect("non-empty") + c);
        nodes.push(ev.node);
    }

    // Load after each prefix (index 0 = before any event).
    let mut loads = Vec::with_capacity(m + 1);
    loads.push(taxi.onboard_load(world.requests));
    for ev in events {
        let riders = world.requests.get(ev.request).passengers as u32;
        let prev = *loads.last().expect("non-empty");
        loads.push(match ev.kind {
            EventKind::Pickup => prev + riders,
            EventKind::Dropoff => prev.saturating_sub(riders),
        });
    }
    if loads[0] + p > capacity && m == 0 {
        return None;
    }

    // Suffix slack: slack[k] = min over q ≥ k of (deadline_q − arrival_q):
    // the maximum delay injectable before event k.
    let mut slack = vec![f64::INFINITY; m + 2];
    for k in (1..=m).rev() {
        let ev = &events[k - 1];
        let own = match ev.kind {
            EventKind::Dropoff => world.requests.get(ev.request).deadline - arrivals[k],
            EventKind::Pickup => f64::INFINITY,
        };
        slack[k] = own.min(slack[k + 1]);
        if slack[k] < 0.0 {
            return None; // committed plan already violates a deadline
        }
    }

    let pickup_delta =
        |cost: &mut dyn FnMut(NodeId, NodeId) -> Option<f64>, i: usize| -> Option<f64> {
            let prev = nodes[i - 1];
            if i <= m {
                Some(cost(prev, req.origin)? + cost(req.origin, nodes[i])? - cost(prev, nodes[i])?)
            } else {
                cost(prev, req.origin)
            }
        };

    let mut best: Option<BestInsertion> = None;

    for i in 1..=m + 1 {
        if loads[i - 1] + p > capacity {
            continue;
        }
        // A genuinely negative detour is impossible (triangle inequality);
        // a tiny negative here means the origin sits *on* the shortest
        // path and f32 rounding leaked through — the best possible pickup
        // spot, not an infeasible one. Clamp instead of skipping.
        let Some(dp) = pickup_delta(&mut cost, i) else { continue };
        let dp = dp.max(0.0);
        let arrival_pickup = if i <= m {
            arrivals[i - 1] + cost(nodes[i - 1], req.origin)?
        } else {
            arrivals[m] + cost(nodes[m], req.origin)?
        };
        if arrival_pickup > req.pickup_deadline() + 1e-6 {
            continue;
        }

        // j == i: drop-off immediately after pickup.
        {
            let leg_od = cost(req.origin, req.destination)?;
            let (pair_delta, arrive_d) = if i <= m {
                let d = cost(nodes[i - 1], req.origin)? + leg_od + cost(req.destination, nodes[i])?
                    - cost(nodes[i - 1], nodes[i])?;
                (d, arrival_pickup + leg_od)
            } else {
                (cost(nodes[m], req.origin)? + leg_od, arrival_pickup + leg_od)
            };
            let ok = arrive_d <= req.deadline + 1e-6 && pair_delta <= slack[i] + 1e-6;
            if ok && best.is_none_or(|b| pair_delta < b.delta_s) {
                best = Some(BestInsertion { i: i - 1, j: i, delta_s: pair_delta });
            }
        }

        // j > i: drop-off later; the pickup delay dp must fit every
        // mid-window event's slack, the pair total must fit slack[j].
        if i <= m {
            let mut mid_slack_ok = dp <= slack[i] + 1e-6;
            for j in (i + 1)..=(m + 1) {
                if loads[j - 1] + p > capacity {
                    break;
                }
                if !mid_slack_ok {
                    break;
                }
                let dd = if j <= m {
                    cost(nodes[j - 1], req.destination)? + cost(req.destination, nodes[j])?
                        - cost(nodes[j - 1], nodes[j])?
                } else {
                    cost(nodes[m], req.destination)?
                };
                let arrive_d = arrivals[j - 1] + dp + cost(nodes[j - 1], req.destination)?;
                let total = dp + dd.max(0.0);
                let ok = arrive_d <= req.deadline + 1e-6 && total <= slack[j] + 1e-6;
                if ok && best.is_none_or(|b| total < b.delta_s) {
                    best = Some(BestInsertion { i: i - 1, j, delta_s: total });
                }
                if j <= m {
                    let ev = &events[j - 1];
                    if ev.kind == EventKind::Dropoff {
                        let own = world.requests.get(ev.request).deadline - arrivals[j];
                        if dp > own + 1e-6 {
                            mid_slack_ok = false;
                        }
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, RequestStore};
    use crate::taxi::TaxiId;
    use mtshare_road::{grid_city, GridCityConfig};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use std::sync::Arc;

    #[test]
    fn vacant_taxi_direct_insertion() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let mut requests = RequestStore::new();
        let direct = cache.cost(NodeId(21), NodeId(200)).unwrap();
        let req = RideRequest {
            id: RequestId(0),
            release_time: 0.0,
            origin: NodeId(21),
            destination: NodeId(200),
            passengers: 1,
            deadline: direct * 1.5,
            direct_cost_s: direct,
            offline: false,
        };
        requests.push(req.clone());
        let world = World {
            graph: &graph,
            cache: &cache,
            oracle: &oracle,
            taxis: &taxis,
            requests: &requests,
        };
        let ins = best_insertion(&taxis[0], &req, 0.0, &world, |a, b| cache.cost(a, b)).unwrap();
        assert_eq!((ins.i, ins.j), (0, 1));
        let expect = cache.cost(NodeId(0), NodeId(21)).unwrap() + direct;
        assert!((ins.delta_s - expect).abs() < 1e-6);
    }
}
