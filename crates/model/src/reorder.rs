//! Exhaustive schedule reordering — the oracle insertion-based scheduling
//! approximates.
//!
//! The paper notes that, in theory, "we should rearrange all events of a
//! taxi schedule" when a request joins, but rejects it for its cost
//! (Sec. IV-C2) and inserts while keeping the existing order. This module
//! implements the exact rearrangement for *small* schedules: enumerate
//! every precedence-valid permutation of the events (existing + the new
//! request's pair) and return the cheapest feasible one. Exponential — use
//! as a test oracle and for the insertion-gap ablation bench, never in the
//! dispatch path.

use crate::request::RideRequest;
use crate::schedule::{evaluate_schedule, EvalContext, EventKind, Schedule, ScheduleEvent};
use crate::taxi::Taxi;
use crate::{Time, World};
use mtshare_road::NodeId;

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct BestReorder {
    /// The cheapest feasible full schedule (existing events freely
    /// reordered, precedence preserved).
    pub schedule: Schedule,
    /// Added route cost vs. the taxi's current plan, seconds.
    pub delta_s: f64,
}

/// Hard cap on events considered (9! permutations ≈ 360 k).
const MAX_EVENTS: usize = 9;

/// Exhaustively finds the cheapest feasible schedule serving the taxi's
/// committed requests plus `req`. Returns `None` when no feasible ordering
/// exists or the schedule exceeds the 9-event cap (9! permutations).
pub fn best_reordering(
    taxi: &Taxi,
    req: &RideRequest,
    now: Time,
    world: &World<'_>,
    mut cost: impl FnMut(NodeId, NodeId) -> Option<f64>,
) -> Option<BestReorder> {
    let mut events: Vec<ScheduleEvent> = taxi.schedule.events().to_vec();
    events.push(ScheduleEvent { kind: EventKind::Pickup, request: req.id, node: req.origin });
    events.push(ScheduleEvent { kind: EventKind::Dropoff, request: req.id, node: req.destination });
    if events.len() > MAX_EVENTS {
        return None;
    }

    // Current remaining plan cost (for the delta).
    let mut remaining = 0.0;
    {
        let mut from = taxi.position_at(now);
        for ev in taxi.schedule.events() {
            remaining += cost(from, ev.node)?;
            from = ev.node;
        }
    }

    let requests = world.requests;
    let lookup = |r| requests.get(r);
    let ectx = EvalContext {
        start_node: taxi.position_at(now),
        start_time: now,
        initial_load: taxi.onboard_load(world.requests),
        capacity: taxi.capacity as u32,
        requests: &lookup,
    };

    let n = events.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut best: Option<(f64, Vec<usize>)> = None;

    // DFS over permutations with precedence pruning: a drop-off may only
    // follow its pick-up (events of onboard passengers have no pick-up in
    // the list, so they are always placeable).
    fn dfs(
        events: &[ScheduleEvent],
        order: &mut Vec<usize>,
        used: &mut [bool],
        best: &mut Option<(f64, Vec<usize>)>,
        evaluate: &mut dyn FnMut(&[usize]) -> Option<f64>,
    ) {
        let n = events.len();
        if order.len() == n {
            if let Some(total) = evaluate(order) {
                if best.as_ref().is_none_or(|(b, _)| total < *b) {
                    *best = Some((total, order.clone()));
                }
            }
            return;
        }
        for i in 0..n {
            if used[i] {
                continue;
            }
            if events[i].kind == EventKind::Dropoff {
                // Its pickup (if present) must already be placed.
                let has_pickup = events
                    .iter()
                    .enumerate()
                    .find(|(_, e)| e.kind == EventKind::Pickup && e.request == events[i].request)
                    .map(|(j, _)| j);
                if let Some(j) = has_pickup {
                    if !order.contains(&j) {
                        continue;
                    }
                }
            }
            used[i] = true;
            order.push(i);
            dfs(events, order, used, best, evaluate);
            order.pop();
            used[i] = false;
        }
    }

    let mut evaluate = |order: &[usize]| -> Option<f64> {
        let mut s = Schedule::new();
        for &i in order {
            s.push(events[i]);
        }
        evaluate_schedule(&s, &ectx, &mut cost).map(|e| e.total_cost_s)
    };
    dfs(&events, &mut order, &mut used, &mut best, &mut evaluate);

    best.map(|(total, order)| {
        let mut schedule = Schedule::new();
        for &i in &order {
            schedule.push(events[i]);
        }
        BestReorder { schedule, delta_s: total - remaining }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::best_insertion;
    use crate::request::{RequestId, RequestStore};
    use crate::taxi::TaxiId;
    use mtshare_road::{grid_city, GridCityConfig};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use std::sync::Arc;

    struct Fx {
        graph: Arc<mtshare_road::RoadNetwork>,
        cache: PathCache,
        oracle: HotNodeOracle,
        requests: RequestStore,
    }

    impl Fx {
        fn new() -> Self {
            let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
            let cache = PathCache::new(graph.clone());
            let oracle = HotNodeOracle::new(graph.clone());
            Self { graph, cache, oracle, requests: RequestStore::new() }
        }

        fn req(&mut self, o: u32, d: u32, rho: f64) -> RideRequest {
            let direct = self.cache.cost(NodeId(o), NodeId(d)).unwrap();
            let r = RideRequest {
                id: RequestId(self.requests.len() as u32),
                release_time: 0.0,
                origin: NodeId(o),
                destination: NodeId(d),
                passengers: 1,
                deadline: direct * rho,
                direct_cost_s: direct,
                offline: false,
            };
            self.requests.push(r.clone());
            r
        }

        fn world<'a>(&'a self, taxis: &'a [Taxi]) -> World<'a> {
            World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis,
                requests: &self.requests,
            }
        }
    }

    #[test]
    fn reordering_never_worse_than_insertion() {
        let mut f = Fx::new();
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        // Existing schedule of two requests, inserted back-to-back.
        for (o, d) in [(40u32, 360u32), (23, 340)] {
            let r = f.req(o, d, 8.0);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&r, m, m + 1);
            taxi.assigned.push(r.id);
        }
        let probe = f.req(60, 320, 8.0);
        let taxis = [taxi];
        let world = f.world(&taxis);
        let ins = best_insertion(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b));
        let reo = best_reordering(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b));
        let (ins, reo) = (ins.expect("feasible"), reo.expect("feasible"));
        assert!(
            reo.delta_s <= ins.delta_s + 1e-6,
            "reordering {} must not exceed insertion {}",
            reo.delta_s,
            ins.delta_s
        );
        assert!(reo.schedule.precedence_ok());
        assert_eq!(reo.schedule.len(), taxis[0].schedule.len() + 2);
    }

    #[test]
    fn vacant_taxi_reordering_equals_insertion() {
        let mut f = Fx::new();
        let taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        let probe = f.req(21, 200, 2.0);
        let taxis = [taxi];
        let world = f.world(&taxis);
        let ins =
            best_insertion(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b)).unwrap();
        let reo =
            best_reordering(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b)).unwrap();
        assert!((ins.delta_s - reo.delta_s).abs() < 1e-6);
    }

    #[test]
    fn infeasible_for_both_when_deadline_impossible() {
        let mut f = Fx::new();
        let taxi = Taxi::new(TaxiId(0), 4, NodeId(399));
        let probe = f.req(0, 20, 1.0); // zero slack, taxi at far corner
        let taxis = [taxi];
        let world = f.world(&taxis);
        assert!(best_insertion(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b)).is_none());
        assert!(
            best_reordering(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b)).is_none()
        );
    }

    #[test]
    fn oversized_schedules_refused() {
        let mut f = Fx::new();
        let mut taxi = Taxi::new(TaxiId(0), 8, NodeId(0));
        for k in 0..4u32 {
            let r = f.req(20 + k, 300 + k, 5.0);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&r, m, m + 1);
        }
        let probe = f.req(60, 320, 5.0);
        let taxis = [taxi];
        let world = f.world(&taxis);
        // 8 existing + 2 new = 10 > MAX_EVENTS.
        assert!(
            best_reordering(&taxis[0], &probe, 0.0, &world, |a, b| f.cache.cost(a, b)).is_none()
        );
    }
}
