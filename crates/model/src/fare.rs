//! Regular taxi fares.
//!
//! The payment model (Sec. IV-D) prices rides against the *regular* taxi
//! fare for a distance. Defaults mimic a Chengdu-style tariff: a flag-fall
//! covering the first 2 km, then a per-kilometre rate. Constants affect
//! absolute amounts only; the paper's ±% results depend on the distance
//! structure of shared routes.

/// Distance-based regular taxi tariff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FareTable {
    /// Flag-fall charge (currency units).
    pub base_fare: f64,
    /// Distance covered by the flag-fall, metres.
    pub base_distance_m: f64,
    /// Charge per kilometre beyond the flag-fall.
    pub per_km: f64,
}

impl Default for FareTable {
    fn default() -> Self {
        Self { base_fare: 8.0, base_distance_m: 2000.0, per_km: 1.9 }
    }
}

impl FareTable {
    /// Regular taxi fare for a trip of `distance_m` metres.
    pub fn fare_for_distance(&self, distance_m: f64) -> f64 {
        assert!(distance_m >= 0.0 && distance_m.is_finite(), "invalid distance");
        if distance_m <= self.base_distance_m {
            self.base_fare
        } else {
            self.base_fare + (distance_m - self.base_distance_m) / 1000.0 * self.per_km
        }
    }

    /// Fare for a travel cost in seconds at constant speed `speed_mps`
    /// (the paper fixes 15 km/h, Sec. V-A4).
    pub fn fare_for_cost(&self, cost_s: f64, speed_mps: f64) -> f64 {
        self.fare_for_distance(cost_s * speed_mps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_fall_covers_short_trips() {
        let f = FareTable::default();
        assert_eq!(f.fare_for_distance(0.0), 8.0);
        assert_eq!(f.fare_for_distance(1999.0), 8.0);
        assert_eq!(f.fare_for_distance(2000.0), 8.0);
    }

    #[test]
    fn per_km_beyond_base() {
        let f = FareTable::default();
        assert!((f.fare_for_distance(3000.0) - (8.0 + 1.9)).abs() < 1e-9);
        assert!((f.fare_for_distance(12_000.0) - (8.0 + 19.0)).abs() < 1e-9);
    }

    #[test]
    fn fare_is_monotone_in_distance() {
        let f = FareTable::default();
        let mut prev = 0.0;
        for d in (0..30).map(|i| i as f64 * 700.0) {
            let fare = f.fare_for_distance(d);
            assert!(fare >= prev);
            prev = fare;
        }
    }

    #[test]
    fn fare_for_cost_converts_speed() {
        let f = FareTable::default();
        let speed = 15.0 / 3.6; // 15 km/h in m/s
                                // 960 s at 15 km/h = 4 km.
        let got = f.fare_for_cost(960.0, speed);
        assert!((got - f.fare_for_distance(4000.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn rejects_negative_distance() {
        let _ = FareTable::default().fare_for_distance(-1.0);
    }
}
