//! The pluggable schedule-scoring engine behind `--scheduler dp|dtree`.
//!
//! Every dispatch scheme scores candidate taxis through a
//! [`ScheduleEngine`]: mT-Share and pGreedyDP via
//! [`ScheduleEngine::best_insertion`] (minimum-detour position pair),
//! T-Share and NoSharing via [`ScheduleEngine::first_feasible`]
//! (first-valid enumeration). Two engines exist:
//!
//! - [`DpEngine`] — the stateless per-request insertion DP
//!   (`crate::best_insertion`), re-enumerating every candidate schedule
//!   from scratch;
//! - [`DtreeEngine`] — per-taxi incremental dynamic trees
//!   (`mtshare-dtree`): committed spines with cached leg costs, synced
//!   to taxi plans by structural diff (advance / commit-splice /
//!   remove-splice / retime) and scored through memoized lookups.
//!
//! Both produce **bit-identical** results for every query — the dtree
//! scorer replicates the DP's control flow and floating-point operation
//! order exactly (property-tested in `tests/dtree_equivalence.rs`) — so
//! the engine choice affects only the profiling subtree of a run's
//! telemetry, never its trace.

use crate::insertion::{best_insertion, BestInsertion};
use crate::request::{RequestId, RideRequest};
use crate::schedule::{
    evaluate_schedule, EvalContext, EventKind, Schedule, ScheduleEvaluation, ScheduleEvent,
};
use crate::taxi::Taxi;
use crate::{Time, World};
use mtshare_dtree::{DTree, Insertion, Probe, Stop};
use mtshare_obs::Stage;
use mtshare_road::NodeId;
use std::sync::{Arc, Mutex};

/// Which scheduling engine scores insertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Per-request insertion DP (full re-enumeration per candidate).
    #[default]
    Dp,
    /// Incremental per-taxi dynamic trees with memoized scoring.
    Dtree,
}

impl SchedulerKind {
    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dp" => Some(Self::Dp),
            "dtree" => Some(Self::Dtree),
            _ => None,
        }
    }

    /// The CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Dp => "dp",
            Self::Dtree => "dtree",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cumulative engine counters for the summary's `profiling.dtree`
/// block. All zero under the plain DP. Profiling only: totals depend on
/// worker interleaving (who syncs a tree first), never on results.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Insertion scorings served by trees.
    pub scores: u64,
    /// Full spine rebuilds.
    pub rebuilds: u64,
    /// Completed-stop advances.
    pub advances: u64,
    /// Winning-branch promotions (commit splices).
    pub commits: u64,
    /// Request splice-outs (cancel/breakdown repair).
    pub removes: u64,
    /// Version refreshes after retiming.
    pub retimes: u64,
    /// Committed-leg costs served from spine caches.
    pub legs_reused: u64,
    /// Committed-leg costs filled by a fresh oracle query.
    pub legs_filled: u64,
    /// Per-evaluation memo hits.
    pub memo_reuses: u64,
    /// Per-evaluation memo fills (distinct oracle queries).
    pub memo_fills: u64,
}

/// A schedule-scoring engine: the strategy object behind
/// `--scheduler dp|dtree`.
///
/// Engines are shared across dispatch workers (`&self` methods, callers
/// hold an `Arc`); implementations must be `Send + Sync` and keep any
/// interior mutability deterministic — results must be a pure function
/// of the query, independent of worker interleaving.
pub trait ScheduleEngine: Send + Sync {
    /// Which engine this is.
    fn kind(&self) -> SchedulerKind;

    /// The pipeline stage this engine's scoring time is recorded under
    /// (`insertion_dp` vs `dtree_update`).
    fn stage(&self) -> Stage;

    /// Finds the minimum-added-cost feasible insertion of `req` into
    /// `taxi`'s schedule — same contract as [`crate::best_insertion`],
    /// and bit-identical results across engines.
    fn best_insertion(
        &self,
        taxi: &Taxi,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        cost: &mut dyn FnMut(NodeId, NodeId) -> Option<f64>,
    ) -> Option<BestInsertion>;

    /// First-valid insertion enumeration shared by the T-Share and
    /// NoSharing baselines: walks `(i, j)` pairs in pinned order,
    /// evaluates each instance over the oracle, and offers feasible ones
    /// to `accept`. Returning `true` accepts (the pair is the result);
    /// returning `false` abandons the pickup position `i` and advances
    /// to `i + 1` (the baselines' historical `continue 'positions` when
    /// leg materialization fails).
    fn first_feasible(
        &self,
        taxi: &Taxi,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        accept: &mut dyn FnMut(&Schedule, &ScheduleEvaluation) -> bool,
    ) -> Option<(Schedule, ScheduleEvaluation)> {
        let pos = taxi.position_at(now);
        let requests = world.requests;
        let lookup = |r| requests.get(r);
        let ectx = EvalContext {
            start_node: pos,
            start_time: now,
            initial_load: taxi.onboard_load(world.requests),
            capacity: taxi.capacity as u32,
            requests: &lookup,
        };
        let m = taxi.schedule.len();
        for i in 0..=m {
            for j in (i + 1)..=(m + 1) {
                let schedule = taxi.schedule.with_insertion(req, i, j);
                let Some(eval) =
                    evaluate_schedule(&schedule, &ectx, |a, b| world.oracle.cost(a, b))
                else {
                    continue;
                };
                if accept(&schedule, &eval) {
                    return Some((schedule, eval));
                }
                break; // abandon this pickup position
            }
        }
        None
    }

    /// `taxi`'s plan changed (assignment committed, chaos repair,
    /// retiming). Stateless engines ignore this; the dtree engine syncs
    /// the taxi's spine eagerly so the next score starts warm.
    fn after_assign(&self, _taxi: &Taxi, _world: &World<'_>) {}

    /// `taxi` completed a schedule event (front of plan popped).
    fn on_taxi_progress(&self, _taxi: &Taxi, _world: &World<'_>) {}

    /// `taxi` permanently left service.
    fn on_taxi_removed(&self, _taxi: &Taxi) {}

    /// Drops all incremental state (checkpoint restore: trees are
    /// rebuilt lazily from the restored plans, keeping the snapshot
    /// format unchanged).
    fn invalidate_all(&self) {}

    /// Cumulative counters.
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }
}

/// The stateless insertion-DP engine (`--scheduler dp`).
#[derive(Debug, Default)]
pub struct DpEngine;

impl ScheduleEngine for DpEngine {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Dp
    }

    fn stage(&self) -> Stage {
        Stage::InsertionDp
    }

    fn best_insertion(
        &self,
        taxi: &Taxi,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        cost: &mut dyn FnMut(NodeId, NodeId) -> Option<f64>,
    ) -> Option<BestInsertion> {
        best_insertion(taxi, req, now, world, |a, b| cost(a, b))
    }
}

/// The incremental dynamic-tree engine (`--scheduler dtree`): one
/// [`DTree`] per taxi behind a mutex (scoring runs concurrently across
/// dispatch workers over disjoint taxis; the sync step is a pure
/// function of the taxi's current plan, so whichever worker syncs first
/// produces the same spine).
pub struct DtreeEngine {
    trees: Vec<Mutex<DTree>>,
}

impl DtreeEngine {
    /// One empty tree per fleet slot.
    pub fn new(n_taxis: usize) -> Self {
        let mut trees = Vec::with_capacity(n_taxis);
        trees.resize_with(n_taxis, || Mutex::new(DTree::new()));
        Self { trees }
    }

    fn lock(&self, idx: usize) -> Option<std::sync::MutexGuard<'_, DTree>> {
        self.trees.get(idx).map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Converts a schedule event to a dtree stop (rider counts are
/// immutable per request, so they can live in the spine).
fn stop_of(ev: &ScheduleEvent, world: &World<'_>) -> Stop {
    Stop {
        node: ev.node.0,
        request: ev.request.0,
        pickup: ev.kind == EventKind::Pickup,
        riders: world.requests.get(ev.request).passengers as u32,
    }
}

fn same_stop(s: &Stop, ev: &ScheduleEvent) -> bool {
    s.node == ev.node.0 && s.request == ev.request.0 && s.pickup == (ev.kind == EventKind::Pickup)
}

/// If `new` is `old` plus exactly one request's pickup+dropoff pair
/// (order preserved), returns the pair's indices in `new`. Events are
/// unique per (request, kind), so the greedy alignment is exact.
fn diff_plus_pair(old: &[Stop], new: &[ScheduleEvent]) -> Option<(usize, usize)> {
    let mut extras = [0usize; 2];
    let mut n_extra = 0;
    let mut oi = 0;
    for (ni, ev) in new.iter().enumerate() {
        if oi < old.len() && same_stop(&old[oi], ev) {
            oi += 1;
        } else {
            if n_extra == 2 {
                return None;
            }
            extras[n_extra] = ni;
            n_extra += 1;
        }
    }
    if oi != old.len() || n_extra != 2 {
        return None;
    }
    let (i, j) = (extras[0], extras[1]);
    let (a, b) = (&new[i], &new[j]);
    (a.request == b.request && a.kind == EventKind::Pickup && b.kind == EventKind::Dropoff)
        .then_some((i, j))
}

/// If `new` is `old` minus every stop of exactly one request (order
/// preserved), returns that request id.
fn diff_minus_request(old: &[Stop], new: &[ScheduleEvent]) -> Option<u32> {
    let mut missing: Option<u32> = None;
    let mut ni = 0;
    for s in old {
        if ni < new.len() && same_stop(s, &new[ni]) {
            ni += 1;
        } else {
            match missing {
                None => missing = Some(s.request),
                Some(r) if r == s.request => {}
                Some(_) => return None,
            }
        }
    }
    if ni != new.len() {
        return None;
    }
    missing
}

/// Brings `tree` in sync with `taxi`'s committed plan, choosing the
/// cheapest structural update: advance (completed stops popped), retime
/// (version bump, identical sequence), commit splice (one request
/// added), remove splice (one request cancelled), else full rebuild.
/// Deterministic: a pure function of `(tree, taxi)` state.
fn sync_tree(tree: &mut DTree, taxi: &Taxi, world: &World<'_>) {
    let events = taxi.schedule.events();
    let version = taxi.route_version;
    if tree.is_synced(version, events.len()) {
        return;
    }
    if tree.is_built() {
        if tree.version() == version && events.len() < tree.len() {
            // Completed stops pop off the front without a version bump.
            let k = tree.len() - events.len();
            if events.iter().zip(&tree.stops()[k..]).all(|(ev, s)| same_stop(s, ev)) {
                tree.advance(k);
                return;
            }
        } else if tree.version() != version {
            if events.len() == tree.len()
                && events.iter().zip(tree.stops()).all(|(ev, s)| same_stop(s, ev))
            {
                // Retiming (traffic shift re-arms the route): the stop
                // sequence and the oracle metric are unchanged.
                tree.refresh_version(version);
                return;
            }
            if events.len() == tree.len() + 2 {
                if let Some((i, j)) = diff_plus_pair(tree.stops(), events) {
                    tree.commit(
                        version,
                        Insertion { i, j, delta_s: 0.0 },
                        stop_of(&events[i], world),
                        stop_of(&events[j], world),
                    );
                    return;
                }
            }
            if events.len() < tree.len() {
                if let Some(request) = diff_minus_request(tree.stops(), events) {
                    tree.remove(version, request);
                    return;
                }
            }
        }
    }
    tree.rebuild(version, events.iter().map(|ev| stop_of(ev, world)));
}

impl ScheduleEngine for DtreeEngine {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Dtree
    }

    fn stage(&self) -> Stage {
        Stage::DtreeUpdate
    }

    fn best_insertion(
        &self,
        taxi: &Taxi,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        cost: &mut dyn FnMut(NodeId, NodeId) -> Option<f64>,
    ) -> Option<BestInsertion> {
        let Some(mut tree) = self.lock(taxi.id.index()) else {
            // Fleet grew past the configured size: score via the DP.
            return best_insertion(taxi, req, now, world, |a, b| cost(a, b));
        };
        sync_tree(&mut tree, taxi, world);
        let probe = Probe {
            origin: req.origin.0,
            destination: req.destination.0,
            passengers: req.passengers as u32,
            deadline: req.deadline,
            pickup_deadline: req.pickup_deadline(),
            now,
            pos: taxi.position_at(now).0,
            initial_load: taxi.onboard_load(world.requests),
            capacity: taxi.capacity as u32,
        };
        // Score through the oracle's batched reader: every leg against a
        // pinned endpoint (in steady state, all of them — active request
        // endpoints are pinned) is a direct vector read with the lock
        // taken once, bit-identical to `oracle.cost`. Anything else
        // falls back to the caller's cost function, so custom cost
        // closures (tests, alternate backends) keep exact dp parity.
        let ins = world.oracle.batch(|fast| {
            tree.score(&probe, &mut |r| world.requests.get(RequestId(r)).deadline, &mut |a, b| {
                let (a, b) = (NodeId(a), NodeId(b));
                fast.pinned_cost(a, b).unwrap_or_else(|| cost(a, b))
            })
        })?;
        Some(BestInsertion { i: ins.i, j: ins.j, delta_s: ins.delta_s })
    }

    fn after_assign(&self, taxi: &Taxi, world: &World<'_>) {
        if let Some(mut tree) = self.lock(taxi.id.index()) {
            sync_tree(&mut tree, taxi, world);
        }
    }

    fn on_taxi_progress(&self, taxi: &Taxi, world: &World<'_>) {
        if let Some(mut tree) = self.lock(taxi.id.index()) {
            sync_tree(&mut tree, taxi, world);
        }
    }

    fn on_taxi_removed(&self, taxi: &Taxi) {
        if let Some(mut tree) = self.lock(taxi.id.index()) {
            tree.clear();
        }
    }

    fn invalidate_all(&self) {
        for slot in &self.trees {
            slot.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    fn stats(&self) -> EngineStats {
        let mut out = EngineStats::default();
        for slot in &self.trees {
            let tree = slot.lock().unwrap_or_else(|e| e.into_inner());
            let s = &tree.stats;
            out.scores += s.scores;
            out.rebuilds += s.rebuilds;
            out.advances += s.advances;
            out.commits += s.commits;
            out.removes += s.removes;
            out.retimes += s.retimes;
            out.legs_reused += s.legs_reused;
            out.legs_filled += s.legs_filled;
            out.memo_reuses += s.memo_reuses;
            out.memo_fills += s.memo_fills;
        }
        out
    }
}

/// Builds the engine for `kind` over a fleet of `n_taxis`.
pub fn make_engine(kind: SchedulerKind, n_taxis: usize) -> Arc<dyn ScheduleEngine> {
    match kind {
        SchedulerKind::Dp => Arc::new(DpEngine),
        SchedulerKind::Dtree => Arc::new(DtreeEngine::new(n_taxis)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestStore;
    use crate::taxi::TaxiId;
    use mtshare_road::{grid_city, GridCityConfig};
    use mtshare_routing::{HotNodeOracle, PathCache};

    struct Fixture {
        graph: Arc<mtshare_road::RoadNetwork>,
        cache: PathCache,
        oracle: HotNodeOracle,
        requests: RequestStore,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
            let cache = PathCache::new(graph.clone());
            let oracle = HotNodeOracle::new(graph.clone());
            Self { graph, cache, oracle, requests: RequestStore::new() }
        }

        fn add_request(&mut self, origin: u32, dest: u32, rho: f64) -> RideRequest {
            let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
            let req = RideRequest {
                id: RequestId(self.requests.len() as u32),
                release_time: 0.0,
                origin: NodeId(origin),
                destination: NodeId(dest),
                passengers: 1,
                deadline: direct * rho,
                direct_cost_s: direct,
                offline: false,
            };
            self.requests.push(req.clone());
            self.oracle.pin(req.origin);
            self.oracle.pin(req.destination);
            req
        }

        fn world<'a>(&'a self, taxis: &'a [Taxi]) -> World<'a> {
            World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis,
                requests: &self.requests,
            }
        }
    }

    #[test]
    fn engines_agree_bit_for_bit_on_fresh_and_busy_taxis() {
        let mut f = Fixture::new();
        let r0 = f.add_request(21, 200, 3.0);
        let r1 = f.add_request(42, 210, 3.0);
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        let dp = DpEngine;
        let dtree = DtreeEngine::new(1);
        for busy in [false, true] {
            if busy {
                taxi.schedule = Schedule::new().with_insertion(&r0, 0, 1);
                taxi.assigned.push(r0.id);
                taxi.route_version += 1;
            }
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            let a =
                dp.best_insertion(&taxis[0], &r1, 0.0, &world, &mut |x, y| world.oracle.cost(x, y));
            let b = dtree
                .best_insertion(&taxis[0], &r1, 0.0, &world, &mut |x, y| world.oracle.cost(x, y));
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!((a.i, a.j), (b.i, b.j));
                    assert_eq!(a.delta_s.to_bits(), b.delta_s.to_bits());
                }
                (a, b) => panic!("engines disagree: {a:?} vs {b:?}"),
            }
        }
        let stats = dtree.stats();
        assert!(stats.scores >= 2);
        assert!(stats.rebuilds >= 1);
    }

    #[test]
    fn sync_prefers_splices_over_rebuilds() {
        let mut f = Fixture::new();
        let r0 = f.add_request(21, 200, 4.0);
        let r1 = f.add_request(42, 210, 4.0);
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        let engine = DtreeEngine::new(1);
        let probe_req = f.add_request(60, 150, 4.0);

        // Initial build.
        taxi.schedule = Schedule::new().with_insertion(&r0, 0, 1);
        taxi.route_version = 1;
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
        }
        assert_eq!(engine.stats().rebuilds, 1);

        // One more request committed: splice, not rebuild.
        taxi.schedule = taxi.schedule.with_insertion(&r1, 1, 2);
        taxi.route_version = 2;
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
        }
        assert_eq!(engine.stats().rebuilds, 1);
        assert_eq!(engine.stats().commits, 1);

        // Version bump with unchanged sequence: retime.
        taxi.route_version = 3;
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
        }
        assert_eq!(engine.stats().retimes, 1);

        // Request cancelled: remove splice.
        taxi.schedule = taxi.schedule.without_request(r1.id);
        taxi.route_version = 4;
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
        }
        assert_eq!(engine.stats().removes, 1);
        assert_eq!(engine.stats().rebuilds, 1);

        // Front event completed (no version bump): advance.
        taxi.schedule.pop_front();
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
            // And the synced tree still scores identically to the DP.
            let a = DpEngine.best_insertion(&taxis[0], &probe_req, 10.0, &world, &mut |x, y| {
                world.oracle.cost(x, y)
            });
            let b = engine.best_insertion(&taxis[0], &probe_req, 10.0, &world, &mut |x, y| {
                world.oracle.cost(x, y)
            });
            assert_eq!(
                a.map(|v| (v.i, v.j, v.delta_s.to_bits())),
                b.map(|v| (v.i, v.j, v.delta_s.to_bits()))
            );
        }
        assert_eq!(engine.stats().advances, 1);

        // Invalidate drops everything; next touch rebuilds.
        engine.invalidate_all();
        {
            let taxis = vec![taxi.clone()];
            let world = f.world(&taxis);
            engine.after_assign(&taxis[0], &world);
        }
        assert_eq!(engine.stats().rebuilds, 2);
    }
}
