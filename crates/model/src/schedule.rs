//! Taxi schedules (Def. 4) and schedule feasibility evaluation.
//!
//! A schedule is the ordered event sequence a shared taxi will execute:
//! pick-ups and drop-offs at request origins/destinations. Insertion-based
//! scheduling (Alg. 1) generates *schedule instances* by inserting a new
//! request's two events while keeping the existing order — the evaluation
//! helper here walks an instance, computing arrival times against a leg-cost
//! oracle and checking capacity and deadline constraints.

use crate::request::{RequestId, RideRequest};
use crate::Time;
use mtshare_road::NodeId;

/// Pick-up or drop-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Board the passengers of a request at its origin.
    Pickup,
    /// Deliver the passengers of a request at its destination.
    Dropoff,
}

/// One schedule event `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEvent {
    /// What happens.
    pub kind: EventKind,
    /// Whose request.
    pub request: RequestId,
    /// Where (the request's origin for pick-ups, destination for
    /// drop-offs).
    pub node: NodeId,
}

/// An ordered event sequence for one taxi.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    events: Vec<ScheduleEvent>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events in execution order.
    #[inline]
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.events
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no pending events (vacant taxi).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event (used when reconstructing schedules; prefer
    /// [`Schedule::with_insertion`] for matching).
    pub fn push(&mut self, ev: ScheduleEvent) {
        self.events.push(ev);
    }

    /// Removes and returns the first event. Panics on empty schedules.
    pub fn pop_front(&mut self) -> ScheduleEvent {
        self.events.remove(0)
    }

    /// A new schedule with `req`'s pick-up inserted before position `i` and
    /// drop-off before position `j` of the *resulting* sequence
    /// (`i < j ≤ len + 1`), keeping all existing events in order — the
    /// paper's schedule-instance enumeration.
    pub fn with_insertion(&self, req: &RideRequest, i: usize, j: usize) -> Schedule {
        assert!(i < j && j <= self.events.len() + 1, "invalid insertion positions ({i}, {j})");
        let mut events = Vec::with_capacity(self.events.len() + 2);
        events.extend_from_slice(&self.events[..i]);
        events.push(ScheduleEvent { kind: EventKind::Pickup, request: req.id, node: req.origin });
        // After inserting the pickup, original positions shift by one.
        events.extend_from_slice(&self.events[i..j - 1]);
        events.push(ScheduleEvent {
            kind: EventKind::Dropoff,
            request: req.id,
            node: req.destination,
        });
        events.extend_from_slice(&self.events[j - 1..]);
        Schedule { events }
    }

    /// Checks structural validity: every request appears at most once per
    /// kind and pick-ups precede drop-offs.
    pub fn precedence_ok(&self) -> bool {
        use rustc_hash::FxHashMap;
        let mut seen: FxHashMap<RequestId, EventKind> = FxHashMap::default();
        for ev in &self.events {
            match (ev.kind, seen.get(&ev.request)) {
                (EventKind::Pickup, None) => {
                    seen.insert(ev.request, EventKind::Pickup);
                }
                (EventKind::Dropoff, Some(EventKind::Pickup)) => {
                    seen.insert(ev.request, EventKind::Dropoff);
                }
                // Drop-off without a scheduled pickup is fine *only* for
                // onboard passengers; structural check cannot know, so we
                // accept a leading drop-off but never a duplicate.
                (EventKind::Dropoff, None) => {
                    seen.insert(ev.request, EventKind::Dropoff);
                }
                _ => return false,
            }
        }
        true
    }

    /// Request ids touched by this schedule.
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.events.iter().map(|e| e.request)
    }

    /// A copy of the schedule with every event of `req` removed — the
    /// repair step for cancellations and disruption-dropped riders.
    /// Removing events never breaks precedence for the remaining
    /// requests.
    pub fn without_request(&self, req: RequestId) -> Schedule {
        Schedule { events: self.events.iter().copied().filter(|e| e.request != req).collect() }
    }
}

/// Outcome of walking a schedule instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEvaluation {
    /// Total travel cost of the route realizing the schedule, seconds.
    pub total_cost_s: f64,
    /// Arrival time at each event, aligned with the schedule.
    pub arrival_times: Vec<Time>,
}

/// Context needed to evaluate a schedule instance for one taxi.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// Where the taxi is now.
    pub start_node: NodeId,
    /// Current time.
    pub start_time: Time,
    /// Passengers already in the taxi (their drop-offs appear in the
    /// schedule without pick-ups).
    pub initial_load: u32,
    /// Seat capacity of the taxi.
    pub capacity: u32,
    /// Request lookup for deadlines and rider counts.
    pub requests: &'a dyn Fn(RequestId) -> &'a RideRequest,
}

/// Walks `schedule` from the context, pulling leg costs from `leg_cost`
/// (`None` = unreachable). Returns `None` if any leg is unreachable, any
/// drop-off misses its deadline, or the load ever exceeds capacity;
/// otherwise the total cost and per-event arrival times.
///
/// This is the feasibility core shared by mT-Share and both baselines, so
/// the schemes differ only in *which* instances they enumerate and how legs
/// are routed.
pub fn evaluate_schedule(
    schedule: &Schedule,
    ctx: &EvalContext<'_>,
    mut leg_cost: impl FnMut(NodeId, NodeId) -> Option<f64>,
) -> Option<ScheduleEvaluation> {
    let mut load = ctx.initial_load;
    if load > ctx.capacity {
        return None;
    }
    let mut node = ctx.start_node;
    let mut t = ctx.start_time;
    let mut total = 0.0;
    let mut arrivals = Vec::with_capacity(schedule.len());
    for ev in schedule.events() {
        let c = leg_cost(node, ev.node)?;
        t += c;
        total += c;
        node = ev.node;
        arrivals.push(t);
        let req = (ctx.requests)(ev.request);
        match ev.kind {
            EventKind::Pickup => {
                load += req.passengers as u32;
                if load > ctx.capacity {
                    return None;
                }
            }
            EventKind::Dropoff => {
                if t > req.deadline + 1e-6 {
                    return None;
                }
                load = load.saturating_sub(req.passengers as u32);
            }
        }
    }
    Some(ScheduleEvaluation { total_cost_s: total, arrival_times: arrivals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;

    fn mkreq(id: u32, origin: u32, dest: u32, deadline: Time) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers: 1,
            deadline,
            direct_cost_s: 100.0,
            offline: false,
        }
    }

    /// Unit leg cost: |a - b| treated as seconds.
    fn unit_cost(a: NodeId, b: NodeId) -> Option<f64> {
        Some((a.0 as f64 - b.0 as f64).abs())
    }

    #[test]
    fn insertion_preserves_order_and_precedence() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let r2 = mkreq(2, 30, 40, 1e9);
        let base = Schedule::new().with_insertion(&r1, 0, 1);
        assert_eq!(base.len(), 2);
        // Insert r2 pickup at 1, dropoff at 2 => P1 P2 D2 D1.
        let s = base.with_insertion(&r2, 1, 2);
        let kinds: Vec<_> = s.events().iter().map(|e| (e.kind, e.request.0)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Pickup, 1),
                (EventKind::Pickup, 2),
                (EventKind::Dropoff, 2),
                (EventKind::Dropoff, 1)
            ]
        );
        assert!(s.precedence_ok());
    }

    #[test]
    fn all_insertion_positions_are_structurally_valid() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let r2 = mkreq(2, 30, 40, 1e9);
        let r3 = mkreq(3, 50, 60, 1e9);
        let base = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 1, 2);
        let m = base.len();
        for i in 0..=m {
            for j in (i + 1)..=(m + 1) {
                let s = base.with_insertion(&r3, i, j);
                assert!(s.precedence_ok(), "i={i} j={j}");
                assert_eq!(s.len(), m + 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid insertion")]
    fn rejects_dropoff_before_pickup() {
        let r = mkreq(1, 10, 20, 1e9);
        let _ = Schedule::new().with_insertion(&r, 1, 1);
    }

    #[test]
    fn precedence_rejects_double_pickup() {
        let mut s = Schedule::new();
        let ev = ScheduleEvent { kind: EventKind::Pickup, request: RequestId(1), node: NodeId(0) };
        s.push(ev);
        s.push(ev);
        assert!(!s.precedence_ok());
    }

    #[test]
    fn without_request_strips_both_events() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let r2 = mkreq(2, 30, 40, 1e9);
        let s = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 1, 2);
        let repaired = s.without_request(RequestId(2));
        assert_eq!(repaired.len(), 2);
        assert!(repaired.request_ids().all(|r| r == RequestId(1)));
        assert!(repaired.precedence_ok());
        // Removing a request not present is a no-op copy.
        assert_eq!(s.without_request(RequestId(9)), s);
    }

    #[test]
    fn leading_dropoff_allowed_for_onboard() {
        let mut s = Schedule::new();
        s.push(ScheduleEvent { kind: EventKind::Dropoff, request: RequestId(1), node: NodeId(5) });
        assert!(s.precedence_ok());
    }

    #[test]
    fn evaluate_computes_costs_and_arrivals() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let reqs = [r1.clone()];
        let lookup = |id: RequestId| &reqs[id.index() - 1];
        let s = Schedule::new().with_insertion(&r1, 0, 1);
        let ctx = EvalContext {
            start_node: NodeId(0),
            start_time: 100.0,
            initial_load: 0,
            capacity: 4,
            requests: &lookup,
        };
        let e = evaluate_schedule(&s, &ctx, unit_cost).unwrap();
        assert_eq!(e.total_cost_s, 20.0); // 0->10 (10) + 10->20 (10)
        assert_eq!(e.arrival_times, vec![110.0, 120.0]);
    }

    #[test]
    fn evaluate_rejects_missed_deadline() {
        let r1 = mkreq(1, 10, 20, 115.0); // dropoff would be at 120
        let reqs = [r1.clone()];
        let lookup = |id: RequestId| &reqs[id.index() - 1];
        let s = Schedule::new().with_insertion(&r1, 0, 1);
        let ctx = EvalContext {
            start_node: NodeId(0),
            start_time: 100.0,
            initial_load: 0,
            capacity: 4,
            requests: &lookup,
        };
        assert!(evaluate_schedule(&s, &ctx, unit_cost).is_none());
    }

    #[test]
    fn evaluate_rejects_capacity_overflow() {
        let mut r1 = mkreq(1, 10, 20, 1e9);
        r1.passengers = 3;
        let mut r2 = mkreq(2, 12, 22, 1e9);
        r2.passengers = 2;
        let reqs = [r1.clone(), r2.clone()];
        let lookup = |id: RequestId| &reqs[id.index() - 1];
        // P1 P2 D2 D1: load peaks at 5 > 4.
        let s = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 1, 2);
        let ctx = EvalContext {
            start_node: NodeId(0),
            start_time: 0.0,
            initial_load: 0,
            capacity: 4,
            requests: &lookup,
        };
        assert!(evaluate_schedule(&s, &ctx, unit_cost).is_none());
        // Sequential sharing P1 D1 P2 D2 fits.
        let seq = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 2, 3);
        assert!(evaluate_schedule(&seq, &ctx, unit_cost).is_some());
    }

    #[test]
    fn evaluate_accounts_for_initial_load() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let reqs = [r1.clone()];
        let lookup = |id: RequestId| &reqs[id.index() - 1];
        let s = Schedule::new().with_insertion(&r1, 0, 1);
        let ctx = EvalContext {
            start_node: NodeId(0),
            start_time: 0.0,
            initial_load: 4,
            capacity: 4,
            requests: &lookup,
        };
        assert!(evaluate_schedule(&s, &ctx, unit_cost).is_none());
    }

    #[test]
    fn evaluate_propagates_unreachable_legs() {
        let r1 = mkreq(1, 10, 20, 1e9);
        let reqs = [r1.clone()];
        let lookup = |id: RequestId| &reqs[id.index() - 1];
        let s = Schedule::new().with_insertion(&r1, 0, 1);
        let ctx = EvalContext {
            start_node: NodeId(0),
            start_time: 0.0,
            initial_load: 0,
            capacity: 4,
            requests: &lookup,
        };
        assert!(evaluate_schedule(&s, &ctx, |_, _| None).is_none());
    }
}
