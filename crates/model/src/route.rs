//! Timed taxi routes (Def. 5).
//!
//! A route realizes a schedule: the concatenated travel paths between
//! consecutive events, stamped with absolute arrival times under the
//! constant-speed assumption. The simulator reads positions and event
//! completion times straight off the route without ticking.

use crate::schedule::Schedule;
use crate::Time;
use mtshare_road::{NodeId, RoadNetwork};
use mtshare_routing::Path;

/// A route with absolute node arrival times and event markers.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRoute {
    /// Visited vertices in order (starts at the taxi's position when the
    /// route was planned).
    pub nodes: Vec<NodeId>,
    /// Absolute arrival time at each node; same length as `nodes`.
    pub arrival_s: Vec<Time>,
    /// For each schedule event (in order), the index into `nodes` where it
    /// completes.
    pub event_node_idx: Vec<usize>,
}

impl TimedRoute {
    /// Builds a timed route from per-event legs with *edge-accurate* node
    /// arrival times: each hop advances the clock by its actual edge cost
    /// (normalized so the leg total matches `leg.cost_s` exactly).
    ///
    /// Prefer this over [`TimedRoute::build`] whenever the graph is at
    /// hand: with uniform per-hop interpolation a taxi can appear slightly
    /// further along its route than physically possible, and re-planning
    /// from that position would teleport it forward — letting a rider beat
    /// the shortest path. Simulation commits must use this constructor.
    pub fn build_on(
        graph: &RoadNetwork,
        start_node: NodeId,
        start_time: Time,
        legs: &[Path],
        schedule: &Schedule,
    ) -> Self {
        assert_eq!(legs.len(), schedule.len(), "one leg per schedule event");
        let mut nodes = vec![start_node];
        let mut arrival_s = vec![start_time];
        let mut event_node_idx = Vec::with_capacity(legs.len());
        let mut expected_start = start_node;
        for (leg, ev) in legs.iter().zip(schedule.events()) {
            assert_eq!(leg.start(), expected_start, "leg must start where the previous ended");
            assert_eq!(leg.end(), ev.node, "leg must end at its event node");
            if leg.nodes.len() <= 1 {
                event_node_idx.push(nodes.len() - 1);
            } else {
                // Per-hop edge costs, normalized to the leg's total cost.
                let hops: Vec<f64> = leg
                    .nodes
                    .windows(2)
                    .map(|w| {
                        graph.direct_edge_cost(w[0], w[1]).expect("leg edges exist in the graph")
                            as f64
                    })
                    .collect();
                let total: f64 = hops.iter().sum();
                let scale = if total > 0.0 { leg.cost_s / total } else { 0.0 };
                let t0 = *arrival_s.last().expect("non-empty");
                let mut acc = 0.0;
                for (h, &n) in hops.iter().zip(&leg.nodes[1..]) {
                    acc += h * scale;
                    nodes.push(n);
                    arrival_s.push(t0 + acc);
                }
                event_node_idx.push(nodes.len() - 1);
            }
            expected_start = ev.node;
        }
        Self { nodes, arrival_s, event_node_idx }
    }

    /// Builds a timed route from per-event legs, distributing each leg's
    /// cost uniformly across its hops. Exact at event boundaries; node
    /// positions in between are approximate — use
    /// [`TimedRoute::build_on`] in the simulator.
    ///
    /// `legs[i]` must run from the previous event's node (or `start_node`
    /// for the first leg) to `schedule.events()[i].node`.
    pub fn build(start_node: NodeId, start_time: Time, legs: &[Path], schedule: &Schedule) -> Self {
        assert_eq!(legs.len(), schedule.len(), "one leg per schedule event");
        let mut nodes = vec![start_node];
        let mut arrival_s = vec![start_time];
        let mut event_node_idx = Vec::with_capacity(legs.len());
        let mut expected_start = start_node;
        for (leg, ev) in legs.iter().zip(schedule.events()) {
            assert_eq!(leg.start(), expected_start, "leg must start where the previous ended");
            assert_eq!(leg.end(), ev.node, "leg must end at its event node");
            let leg_nodes = &leg.nodes[1..];
            if leg_nodes.is_empty() {
                // Zero-length leg: the event happens at the current node.
                event_node_idx.push(nodes.len() - 1);
            } else {
                // Distribute the leg cost proportionally to hop count; only
                // the leg-total matters for metrics, per-hop times are used
                // for interpolated positions.
                let t0 = *arrival_s.last().expect("non-empty");
                let per_hop = leg.cost_s / leg_nodes.len() as f64;
                for (h, &n) in leg_nodes.iter().enumerate() {
                    nodes.push(n);
                    arrival_s.push(t0 + per_hop * (h + 1) as f64);
                }
                event_node_idx.push(nodes.len() - 1);
            }
            expected_start = ev.node;
        }
        Self { nodes, arrival_s, event_node_idx }
    }

    /// When the route was planned (time at its first node).
    #[inline]
    pub fn start_time(&self) -> Time {
        self.arrival_s[0]
    }

    /// Completion time of the whole route.
    #[inline]
    pub fn end_time(&self) -> Time {
        *self.arrival_s.last().expect("non-empty")
    }

    /// Completion time of the `i`-th schedule event.
    #[inline]
    pub fn event_time(&self, i: usize) -> Time {
        self.arrival_s[self.event_node_idx[i]]
    }

    /// The last node reached at or before `t` (clamped to the endpoints).
    pub fn position_at(&self, t: Time) -> NodeId {
        let idx = self.arrival_s.partition_point(|&a| a <= t + 1e-9);
        self.nodes[idx.saturating_sub(1).min(self.nodes.len() - 1)]
    }

    /// Nodes reached strictly within the half-open time window
    /// `(from, to]`, with their arrival times. Used for offline-request
    /// encounter detection.
    pub fn nodes_in_window(
        &self,
        from: Time,
        to: Time,
    ) -> impl Iterator<Item = (NodeId, Time)> + '_ {
        let lo = self.arrival_s.partition_point(|&a| a <= from + 1e-9);
        self.nodes[lo..]
            .iter()
            .zip(&self.arrival_s[lo..])
            .take_while(move |(_, &a)| a <= to + 1e-9)
            .map(|(&n, &a)| (n, a))
    }

    /// Total travel cost of the route in seconds.
    #[inline]
    pub fn total_cost_s(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// Stretches the hops overlapping the time window `(from, to)` whose
    /// endpoint nodes satisfy `affected` by `factor` (a traffic shift),
    /// delaying every later arrival by the accumulated slowdown. Window
    /// membership is judged on the *pre-stretch* times — the quasi-static
    /// model: the shift applies to where the plan said the taxi would be.
    /// Returns the total delay added at the end of the route (0.0 when the
    /// route was untouched).
    pub fn stretch(
        &mut self,
        from: Time,
        to: Time,
        factor: f64,
        mut affected: impl FnMut(NodeId) -> bool,
    ) -> f64 {
        assert!(factor.is_finite() && factor > 0.0, "stretch factor must be positive");
        let mut acc = 0.0;
        let mut prev_orig = self.arrival_s[0];
        for i in 1..self.nodes.len() {
            let orig = self.arrival_s[i];
            let overlaps = orig > from && prev_orig < to;
            if overlaps && (affected(self.nodes[i - 1]) || affected(self.nodes[i])) {
                acc += (orig - prev_orig) * (factor - 1.0);
            }
            self.arrival_s[i] = orig + acc;
            prev_orig = orig;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, RideRequest};
    use crate::schedule::Schedule;

    fn mkreq(id: u32, origin: u32, dest: u32) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers: 1,
            deadline: 1e9,
            direct_cost_s: 10.0,
            offline: false,
        }
    }

    fn path(nodes: &[u32], cost: f64) -> Path {
        Path { nodes: nodes.iter().map(|&n| NodeId(n)).collect(), cost_s: cost }
    }

    #[test]
    fn build_stamps_times_and_events() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let route = TimedRoute::build(NodeId(0), 100.0, &legs, &s);
        assert_eq!(route.start_time(), 100.0);
        assert_eq!(route.end_time(), 150.0);
        assert_eq!(route.event_time(0), 120.0); // pickup at node 2
        assert_eq!(route.event_time(1), 150.0); // dropoff at node 4
        assert_eq!(route.total_cost_s(), 50.0);
    }

    #[test]
    fn position_interpolates_by_node() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let route = TimedRoute::build(NodeId(0), 100.0, &legs, &s);
        assert_eq!(route.position_at(99.0), NodeId(0));
        assert_eq!(route.position_at(100.0), NodeId(0));
        assert_eq!(route.position_at(110.0), NodeId(1));
        assert_eq!(route.position_at(120.0), NodeId(2));
        assert_eq!(route.position_at(136.0), NodeId(3));
        assert_eq!(route.position_at(1000.0), NodeId(4));
    }

    #[test]
    fn zero_length_leg_event_at_current_node() {
        // Pickup exactly at the taxi's position.
        let r = mkreq(1, 0, 2);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0], 0.0), path(&[0, 1, 2], 10.0)];
        let route = TimedRoute::build(NodeId(0), 50.0, &legs, &s);
        assert_eq!(route.event_time(0), 50.0);
        assert_eq!(route.event_time(1), 60.0);
    }

    #[test]
    fn nodes_in_window() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let route = TimedRoute::build(NodeId(0), 100.0, &legs, &s);
        let hits: Vec<_> = route.nodes_in_window(100.0, 135.0).collect();
        assert_eq!(hits, vec![(NodeId(1), 110.0), (NodeId(2), 120.0), (NodeId(3), 135.0)]);
        assert_eq!(route.nodes_in_window(150.0, 200.0).count(), 0);
    }

    #[test]
    fn stretch_delays_affected_window_and_suffix() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let mut route = TimedRoute::build(NodeId(0), 100.0, &legs, &s);
        // Double travel time through node 1 for the window (105, 125):
        // hops 0→1 and 1→2 touch the region and overlap it.
        let delay = route.stretch(105.0, 125.0, 2.0, |n| n.0 == 1);
        assert!((delay - 20.0).abs() < 1e-9, "delay {delay}");
        assert_eq!(route.arrival_s, vec![100.0, 120.0, 140.0, 155.0, 170.0]);
        // Event times shift with the nodes.
        assert_eq!(route.event_time(0), 140.0);
        assert_eq!(route.event_time(1), 170.0);
        // Monotone after stretching.
        assert!(route.arrival_s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stretch_outside_window_or_region_is_identity() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let mut route = TimedRoute::build(NodeId(0), 100.0, &legs, &s);
        let orig = route.arrival_s.clone();
        assert_eq!(route.stretch(200.0, 300.0, 3.0, |_| true), 0.0);
        assert_eq!(route.stretch(100.0, 150.0, 3.0, |_| false), 0.0);
        assert_eq!(route.arrival_s, orig);
    }

    #[test]
    #[should_panic(expected = "must start where")]
    fn build_rejects_disconnected_legs() {
        let r = mkreq(1, 2, 4);
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[9, 2], 20.0), path(&[2, 4], 30.0)];
        let _ = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
    }
}
