//! Ride requests (Def. 2).

use crate::Time;
use mtshare_mobility::MobilityVector;
use mtshare_road::{NodeId, RoadNetwork};

/// Identifier of a ride request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A ride request `r_i = <t, o, d, e>` (Def. 2), extended with the rider
/// count and the offline flag (Sec. III-B).
#[derive(Debug, Clone, PartialEq)]
pub struct RideRequest {
    /// Identifier.
    pub id: RequestId,
    /// Release time `t_ri`.
    pub release_time: Time,
    /// Trip origin `o_ri`.
    pub origin: NodeId,
    /// Trip destination `d_ri`.
    pub destination: NodeId,
    /// Number of riders travelling together.
    pub passengers: u8,
    /// Delivery deadline `e_ri`.
    pub deadline: Time,
    /// Shortest-path travel cost `cost(o_ri, d_ri)` in seconds.
    pub direct_cost_s: f64,
    /// Whether this is an offline (roadside-hailing) request `r̄_i`,
    /// invisible to the system until a taxi encounters it.
    pub offline: bool,
}

impl RideRequest {
    /// Pick-up deadline `e_ri − cost(o_ri, d_ri)` (Sec. III-A).
    #[inline]
    pub fn pickup_deadline(&self) -> Time {
        self.deadline - self.direct_cost_s
    }

    /// Remaining waiting budget `Δt` at time `now` (Eq. 2 evaluates this at
    /// the release time).
    #[inline]
    pub fn wait_budget(&self, now: Time) -> f64 {
        self.pickup_deadline() - now
    }

    /// Whether the deadline is achievable at all (a taxi at the origin at
    /// release time could make it).
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.direct_cost_s.is_finite() && self.deadline >= self.release_time + self.direct_cost_s
    }

    /// The request's mobility vector (Def. 9).
    pub fn mobility_vector(&self, graph: &RoadNetwork) -> MobilityVector {
        MobilityVector::new(graph.point(self.origin), graph.point(self.destination))
    }
}

/// Append-only store of all requests seen by a scenario, indexed by
/// [`RequestId`].
#[derive(Debug, Clone, Default)]
pub struct RequestStore {
    all: Vec<RideRequest>,
}

impl RequestStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a request; its id must equal its position.
    pub fn push(&mut self, req: RideRequest) {
        assert_eq!(req.id.index(), self.all.len(), "request ids must be dense");
        self.all.push(req);
    }

    /// Looks up a request.
    #[inline]
    pub fn get(&self, id: RequestId) -> &RideRequest {
        &self.all[id.index()]
    }

    /// Mutable lookup, for recovery-time renegotiation: a breakdown
    /// re-originates stranded onboard riders at the failure position and
    /// recomputes their deadlines before re-dispatch.
    #[inline]
    pub fn get_mut(&mut self, id: RequestId) -> &mut RideRequest {
        &mut self.all[id.index()]
    }

    /// Number of stored requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterator over all requests.
    pub fn iter(&self) -> impl Iterator<Item = &RideRequest> {
        self.all.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RideRequest {
        RideRequest {
            id: RequestId(0),
            release_time: 100.0,
            origin: NodeId(1),
            destination: NodeId(2),
            passengers: 1,
            deadline: 100.0 + 600.0 * 1.3,
            direct_cost_s: 600.0,
            offline: false,
        }
    }

    #[test]
    fn pickup_deadline_and_wait_budget() {
        let r = req();
        assert!((r.pickup_deadline() - (100.0 + 780.0 - 600.0)).abs() < 1e-9);
        assert!((r.wait_budget(100.0) - 180.0).abs() < 1e-9);
        assert!((r.wait_budget(200.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility() {
        let r = req();
        assert!(r.is_feasible());
        let mut tight = req();
        tight.deadline = 100.0 + 599.0;
        assert!(!tight.is_feasible());
        let mut unreachable = req();
        unreachable.direct_cost_s = f64::INFINITY;
        assert!(!unreachable.is_feasible());
    }

    #[test]
    fn store_roundtrip() {
        let mut s = RequestStore::new();
        s.push(req());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.get(RequestId(0)).origin, NodeId(1));
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn store_rejects_sparse_ids() {
        let mut s = RequestStore::new();
        let mut r = req();
        r.id = RequestId(5);
        s.push(r);
    }
}
