//! [`Persist`] impls for every piece of dispatcher world state the
//! simulator checkpoints: requests (mutable — recovery renegotiates
//! deadlines and re-origins orphans), taxis with their full plans, and
//! the schedule/route value types those contain.

use crate::request::{RequestId, RequestStore, RideRequest};
use crate::route::TimedRoute;
use crate::schedule::{EventKind, Schedule, ScheduleEvent};
use crate::taxi::{Taxi, TaxiId};
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};
use mtshare_road::NodeId;

impl Persist for RequestId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RequestId(dec.u32()?))
    }
}

impl Persist for TaxiId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TaxiId(dec.u32()?))
    }
}

impl Persist for RideRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        enc.f64(self.release_time);
        self.origin.encode(enc);
        self.destination.encode(enc);
        enc.u8(self.passengers);
        enc.f64(self.deadline);
        enc.f64(self.direct_cost_s);
        enc.bool(self.offline);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RideRequest {
            id: RequestId::decode(dec)?,
            release_time: dec.f64()?,
            origin: NodeId::decode(dec)?,
            destination: NodeId::decode(dec)?,
            passengers: dec.u8()?,
            deadline: dec.f64()?,
            direct_cost_s: dec.f64()?,
            offline: dec.bool()?,
        })
    }
}

impl Persist for RequestStore {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for r in self.iter() {
            r.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.usize()?;
        let mut store = RequestStore::new();
        for i in 0..n {
            let r = RideRequest::decode(dec)?;
            if r.id.index() != i {
                return Err(DecodeError::Invalid("request ids are not dense"));
            }
            store.push(r);
        }
        Ok(store)
    }
}

impl Persist for EventKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(match self {
            EventKind::Pickup => 0,
            EventKind::Dropoff => 1,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(EventKind::Pickup),
            1 => Ok(EventKind::Dropoff),
            _ => Err(DecodeError::Invalid("unknown EventKind tag")),
        }
    }
}

impl Persist for ScheduleEvent {
    fn encode(&self, enc: &mut Encoder) {
        self.kind.encode(enc);
        self.request.encode(enc);
        self.node.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ScheduleEvent {
            kind: EventKind::decode(dec)?,
            request: RequestId::decode(dec)?,
            node: NodeId::decode(dec)?,
        })
    }
}

impl Persist for Schedule {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(self.events());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let events: Vec<ScheduleEvent> = dec.seq()?;
        let mut s = Schedule::new();
        for ev in events {
            s.push(ev);
        }
        Ok(s)
    }
}

impl Persist for TimedRoute {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(&self.nodes);
        enc.seq(&self.arrival_s);
        enc.seq(&self.event_node_idx);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let nodes: Vec<NodeId> = dec.seq()?;
        let arrival_s: Vec<f64> = dec.seq()?;
        let event_node_idx: Vec<usize> = dec.seq()?;
        if nodes.len() != arrival_s.len() {
            return Err(DecodeError::Invalid("route nodes/arrivals length mismatch"));
        }
        if event_node_idx.iter().any(|&i| i >= nodes.len()) {
            return Err(DecodeError::Invalid("route event index out of bounds"));
        }
        Ok(TimedRoute { nodes, arrival_s, event_node_idx })
    }
}

impl Persist for Taxi {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        enc.u8(self.capacity);
        self.location.encode(enc);
        enc.f64(self.location_time);
        self.schedule.encode(enc);
        self.route.encode(enc);
        enc.seq(&self.onboard);
        enc.seq(&self.assigned);
        enc.u64(self.route_version);
        enc.bool(self.alive);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Taxi {
            id: TaxiId::decode(dec)?,
            capacity: dec.u8()?,
            location: NodeId::decode(dec)?,
            location_time: dec.f64()?,
            schedule: Schedule::decode(dec)?,
            route: Option::<TimedRoute>::decode(dec)?,
            onboard: dec.seq()?,
            assigned: dec.seq()?,
            route_version: dec.u64()?,
            alive: dec.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> Schedule {
        let mut s = Schedule::new();
        s.push(ScheduleEvent { kind: EventKind::Pickup, request: RequestId(3), node: NodeId(10) });
        s.push(ScheduleEvent { kind: EventKind::Dropoff, request: RequestId(3), node: NodeId(44) });
        s
    }

    #[test]
    fn request_and_store_round_trip() {
        let mut store = RequestStore::new();
        for i in 0..4u32 {
            store.push(RideRequest {
                id: RequestId(i),
                release_time: i as f64 * 30.0,
                origin: NodeId(i * 7),
                destination: NodeId(i * 11 + 1),
                passengers: 1 + (i % 3) as u8,
                deadline: i as f64 * 30.0 + 900.0,
                direct_cost_s: 400.0 + i as f64,
                offline: i % 2 == 0,
            });
        }
        let bytes = store.to_bytes();
        let back = RequestStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), store.len());
        for (a, b) in back.iter().zip(store.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn non_dense_request_ids_rejected() {
        let req = RideRequest {
            id: RequestId(5), // should be 0 in a store of one
            release_time: 0.0,
            origin: NodeId(0),
            destination: NodeId(1),
            passengers: 1,
            deadline: 100.0,
            direct_cost_s: 50.0,
            offline: false,
        };
        let mut enc = Encoder::new();
        enc.usize(1);
        req.encode(&mut enc);
        assert!(RequestStore::from_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn taxi_with_full_plan_round_trips() {
        let mut t = Taxi::new(TaxiId(2), 4, NodeId(10));
        t.onboard.push(RequestId(3));
        t.location_time = 120.0;
        let route = TimedRoute {
            nodes: vec![NodeId(10), NodeId(22), NodeId(44)],
            arrival_s: vec![120.0, 180.5, 260.25],
            event_node_idx: vec![0, 2],
        };
        t.set_plan(sample_schedule(), route, 120.0);
        let back = Taxi::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.id, t.id);
        assert_eq!(back.schedule, t.schedule);
        assert_eq!(back.route, t.route);
        assert_eq!(back.onboard, t.onboard);
        assert_eq!(back.route_version, t.route_version);
        assert_eq!(back.alive, t.alive);
        // Canonical bytes: re-encoding the decoded taxi is identical.
        assert_eq!(back.to_bytes(), t.to_bytes());
    }

    #[test]
    fn corrupt_route_shape_rejected() {
        let route = TimedRoute {
            nodes: vec![NodeId(1), NodeId(2)],
            arrival_s: vec![0.0, 1.0],
            event_node_idx: vec![1],
        };
        let mut enc = Encoder::new();
        enc.seq(&route.nodes);
        enc.seq(&route.arrival_s[..1]); // mismatched lengths
        enc.seq(&route.event_node_idx);
        assert!(TimedRoute::from_bytes(&enc.into_bytes()).is_err());
    }
}
