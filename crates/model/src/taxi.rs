//! Taxi status (Def. 3) and in-simulation taxi state.

use crate::request::{RequestId, RequestStore};
use crate::route::TimedRoute;
use crate::schedule::{EventKind, Schedule, ScheduleEvent};
use crate::Time;
use mtshare_road::NodeId;

/// Identifier of a taxi.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaxiId(pub u32);

impl TaxiId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaxiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A shared taxi: `t_j = <loc, S, R>` (Def. 3) plus capacity and
/// bookkeeping for the simulator.
#[derive(Debug, Clone)]
pub struct Taxi {
    /// Identifier.
    pub id: TaxiId,
    /// Seat capacity.
    pub capacity: u8,
    /// Last road-network vertex the taxi is known to have reached.
    pub location: NodeId,
    /// Time at which the taxi was at `location`.
    pub location_time: Time,
    /// Pending events, in execution order (Def. 4).
    pub schedule: Schedule,
    /// Current route realizing the schedule (Def. 5); `None` when idle.
    pub route: Option<TimedRoute>,
    /// Requests whose passengers are currently in the taxi.
    pub onboard: Vec<RequestId>,
    /// Requests assigned but not yet picked up.
    pub assigned: Vec<RequestId>,
    /// Bumped every time the route/schedule changes; lets indexes detect
    /// stale entries.
    pub route_version: u64,
    /// `false` once the taxi has broken down: it never moves again and
    /// must not appear in any candidate search.
    pub alive: bool,
}

impl Taxi {
    /// A new idle taxi parked at `location`.
    pub fn new(id: TaxiId, capacity: u8, location: NodeId) -> Self {
        Self {
            id,
            capacity,
            location,
            location_time: 0.0,
            schedule: Schedule::new(),
            route: None,
            onboard: Vec::new(),
            assigned: Vec::new(),
            route_version: 0,
            alive: true,
        }
    }

    /// Whether the taxi has no passengers and no assignments.
    #[inline]
    pub fn is_vacant(&self) -> bool {
        self.onboard.is_empty() && self.assigned.is_empty()
    }

    /// Riders currently on board.
    pub fn onboard_load(&self, requests: &RequestStore) -> u32 {
        self.onboard.iter().map(|&r| requests.get(r).passengers as u32).sum()
    }

    /// Seats free right now (ignoring future pick-ups).
    pub fn idle_seats(&self, requests: &RequestStore) -> u32 {
        (self.capacity as u32).saturating_sub(self.onboard_load(requests))
    }

    /// Peak load over the remaining schedule (current load plus scheduled
    /// pick-ups minus drop-offs, tracked event by event).
    pub fn peak_load(&self, requests: &RequestStore) -> u32 {
        let mut load = self.onboard_load(requests);
        let mut peak = load;
        for ev in self.schedule.events() {
            let p = requests.get(ev.request).passengers as u32;
            match ev.kind {
                EventKind::Pickup => {
                    load += p;
                    peak = peak.max(load);
                }
                EventKind::Dropoff => load = load.saturating_sub(p),
            }
        }
        peak
    }

    /// The vertex the taxi occupies at time `now` (reads the route; idle
    /// taxis stay parked).
    pub fn position_at(&self, now: Time) -> NodeId {
        match &self.route {
            Some(r) => r.position_at(now),
            None => self.location,
        }
    }

    /// Applies a newly committed schedule/route pair.
    pub fn set_plan(&mut self, schedule: Schedule, route: TimedRoute, now: Time) {
        debug_assert!(route.start_time() <= now + 1e-6);
        self.schedule = schedule;
        self.route = Some(route);
        self.route_version += 1;
    }

    /// Completes the next scheduled event at time `t`, updating location,
    /// onboard/assigned sets. Returns the completed event. The caller must
    /// ensure the event is actually due (`route.event_time(0) <= t`).
    pub fn complete_next_event(&mut self, t: Time) -> ScheduleEvent {
        let ev = self.schedule.pop_front();
        self.location = ev.node;
        self.location_time = t;
        match ev.kind {
            EventKind::Pickup => {
                if let Some(pos) = self.assigned.iter().position(|&r| r == ev.request) {
                    self.assigned.swap_remove(pos);
                }
                self.onboard.push(ev.request);
            }
            EventKind::Dropoff => {
                if let Some(pos) = self.onboard.iter().position(|&r| r == ev.request) {
                    self.onboard.swap_remove(pos);
                }
            }
        }
        // Trim the consumed prefix of the route lazily: when the schedule
        // empties, the taxi parks at its final node.
        if self.schedule.is_empty() {
            self.route = None;
        } else if let Some(route) = &mut self.route {
            route.event_node_idx.remove(0);
        }
        ev
    }

    /// Time the next pending event completes, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        let r = self.route.as_ref()?;
        (!self.schedule.is_empty()).then(|| r.event_time(0))
    }

    /// Takes the taxi out of service at time `now` (breakdown).
    ///
    /// The taxi parks at its current position, its plan is torn down and
    /// its version bumped so every queued event for it becomes a no-op.
    /// Returns the stranded riders: `(onboard, assigned)`, each sorted by
    /// request id for deterministic recovery order.
    pub fn fail(&mut self, now: Time) -> (Vec<RequestId>, Vec<RequestId>) {
        let pos = self.position_at(now);
        self.location = pos;
        self.location_time = now;
        self.schedule = Schedule::new();
        self.route = None;
        self.route_version += 1;
        self.alive = false;
        let mut onboard = std::mem::take(&mut self.onboard);
        let mut assigned = std::mem::take(&mut self.assigned);
        onboard.sort_unstable();
        assigned.sort_unstable();
        (onboard, assigned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RideRequest;
    use mtshare_routing::Path;

    fn store_with(reqs: Vec<RideRequest>) -> RequestStore {
        let mut s = RequestStore::new();
        for r in reqs {
            s.push(r);
        }
        s
    }

    fn mkreq(id: u32, origin: u32, dest: u32, passengers: u8) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers,
            deadline: 1e9,
            direct_cost_s: 10.0,
            offline: false,
        }
    }

    fn path(nodes: &[u32], cost: f64) -> Path {
        Path { nodes: nodes.iter().map(|&n| NodeId(n)).collect(), cost_s: cost }
    }

    #[test]
    fn vacant_and_loads() {
        let reqs = store_with(vec![mkreq(0, 1, 2, 3)]);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        assert!(t.is_vacant());
        assert_eq!(t.idle_seats(&reqs), 4);
        t.onboard.push(RequestId(0));
        assert!(!t.is_vacant());
        assert_eq!(t.onboard_load(&reqs), 3);
        assert_eq!(t.idle_seats(&reqs), 1);
    }

    #[test]
    fn plan_and_complete_events() {
        let r = mkreq(0, 2, 4, 1);
        let reqs = store_with(vec![r.clone()]);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let route = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
        t.assigned.push(r.id);
        t.set_plan(s, route, 0.0);
        assert_eq!(t.route_version, 1);
        assert_eq!(t.next_event_time(), Some(20.0));
        assert_eq!(t.position_at(10.0), NodeId(1));

        let ev = t.complete_next_event(20.0);
        assert_eq!(ev.kind, EventKind::Pickup);
        assert_eq!(t.onboard, vec![r.id]);
        assert!(t.assigned.is_empty());
        assert_eq!(t.location, NodeId(2));
        assert_eq!(t.next_event_time(), Some(50.0));
        assert_eq!(t.onboard_load(&reqs), 1);

        let ev = t.complete_next_event(50.0);
        assert_eq!(ev.kind, EventKind::Dropoff);
        assert!(t.onboard.is_empty());
        assert!(t.is_vacant());
        assert!(t.route.is_none());
        assert_eq!(t.position_at(99.0), NodeId(4));
    }

    #[test]
    fn fail_parks_and_drains_orphans() {
        let r = mkreq(0, 2, 4, 1);
        let r2 = mkreq(1, 3, 4, 1);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![path(&[0, 1, 2], 20.0), path(&[2, 3, 4], 30.0)];
        let route = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
        t.assigned.push(r.id);
        t.set_plan(s, route, 0.0);
        t.onboard.push(r2.id);
        let v0 = t.route_version;

        let (onboard, assigned) = t.fail(10.0);
        assert_eq!(onboard, vec![r2.id]);
        assert_eq!(assigned, vec![r.id]);
        assert!(!t.alive);
        assert!(t.is_vacant());
        assert!(t.route.is_none());
        assert!(t.schedule.is_empty());
        assert!(t.route_version > v0);
        // Parked at the position it had reached mid-leg.
        assert_eq!(t.location, NodeId(1));
        assert_eq!(t.position_at(1e9), NodeId(1));
        assert_eq!(t.next_event_time(), None);
    }

    #[test]
    fn peak_load_tracks_schedule() {
        let r1 = mkreq(0, 2, 6, 2);
        let r2 = mkreq(1, 3, 5, 2);
        let reqs = store_with(vec![r1.clone(), r2.clone()]);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        // P1 P2 D2 D1: peak 4.
        t.schedule = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 1, 2);
        assert_eq!(t.peak_load(&reqs), 4);
        // Sequential: peak 2.
        t.schedule = Schedule::new().with_insertion(&r1, 0, 1).with_insertion(&r2, 2, 3);
        assert_eq!(t.peak_load(&reqs), 2);
    }
}
