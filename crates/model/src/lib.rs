//! Domain model for mT-Share: the vocabulary of Sec. III.
//!
//! - [`request`]: ride requests (Def. 2) and the request store;
//! - [`taxi`]: taxi status (Def. 3) and in-simulation state;
//! - [`schedule`]: taxi schedules (Def. 4), insertion enumeration and the
//!   shared feasibility evaluator;
//! - [`route`]: timed taxi routes (Def. 5);
//! - [`fare`]: the regular-taxi tariff the payment model prices against;
//! - [`scheme`]: the [`DispatchScheme`] trait implemented by mT-Share and
//!   every baseline, plus the read-only [`World`] view;
//! - [`engine`]: the [`ScheduleEngine`] strategy behind
//!   `--scheduler dp|dtree` (insertion DP vs incremental dynamic trees).

#![warn(missing_docs)]

pub mod engine;
pub mod fare;
pub mod insertion;
pub mod persist;
pub mod reorder;
pub mod request;
pub mod route;
pub mod schedule;
pub mod scheme;
pub mod taxi;

/// Simulation time in seconds since scenario start.
pub type Time = f64;

pub use engine::{make_engine, DpEngine, DtreeEngine, EngineStats, ScheduleEngine, SchedulerKind};
pub use fare::FareTable;
pub use insertion::{best_insertion, BestInsertion};
pub use reorder::{best_reordering, BestReorder};
pub use request::{RequestId, RequestStore, RideRequest};
pub use route::TimedRoute;
pub use schedule::{
    evaluate_schedule, EvalContext, EventKind, Schedule, ScheduleEvaluation, ScheduleEvent,
};
pub use scheme::{
    assignment_cmp, Assignment, DispatchOutcome, DispatchScheme, SpeculativeOutcome, WindowRow,
    World,
};
pub use taxi::{Taxi, TaxiId};
