//! Property coverage for the persistence layer: arbitrary nested values
//! round-trip bit-exactly through the codec, any single-byte corruption
//! of a snapshot file is rejected by the checksum (never mis-decoded),
//! and a WAL cut at any byte recovers exactly the record prefix whose
//! bytes survive.

use mtshare_persist::{read_snapshot, write_snapshot, Persist, WalWriter};
use proptest::prelude::*;

/// A stand-in for "arbitrary world state": nested sequences, options,
/// strings, raw f64 bit patterns (including NaNs and signed zeros) and
/// unsigned counters — every shape the real snapshot payload is built
/// from.
type WorldLike = Vec<(u64, Vec<f64>, Option<String>, Vec<(u32, bool)>)>;

fn world_strategy() -> impl Strategy<Value = WorldLike> {
    proptest::collection::vec(
        (
            0u64..u64::MAX,
            // Raw bit patterns: exercises NaN payloads, infinities and
            // signed zeros, which a lossy codec would normalize away.
            proptest::collection::vec((0u64..u64::MAX).prop_map(f64::from_bits), 0..8),
            (0u8..3, proptest::collection::vec(32u8..127, 0..12))
                .prop_map(|(tag, raw)| (tag > 0).then(|| String::from_utf8(raw).expect("ascii"))),
            proptest::collection::vec((0u32..u32::MAX, proptest::bool::ANY), 0..6),
        ),
        0..10,
    )
}

fn scratch(tag: &str, case: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir()
        .join(format!("mtshare-persist-prop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// decode(encode(x)) re-encodes to the identical byte string — the
    /// canonical-bytes form of round-trip equality, which also holds for
    /// NaN payloads where `==` on the values would not.
    #[test]
    fn arbitrary_state_round_trips(world in world_strategy()) {
        let bytes = world.to_bytes();
        let back = WorldLike::from_bytes(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Flipping any single byte of a snapshot file — header or payload,
    /// any bit — makes `read_snapshot` reject it. It must never return
    /// success with different bytes than were written.
    #[test]
    fn single_byte_corruption_is_always_detected(
        world in world_strategy(),
        flip_pos in 0usize..10_000,
        flip_bit in 0u32..8,
    ) {
        let dir = scratch("flip", (flip_pos as u64) << 3 | u64::from(flip_bit));
        let path = dir.join("w.mtsnap");
        let payload = world.to_bytes();
        write_snapshot(&path, &payload).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let pos = flip_pos % raw.len();
        raw[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).unwrap();
        match read_snapshot(&path) {
            Err(_) => {}
            Ok(got) => {
                // The flip landed somewhere that must still reproduce the
                // exact payload (impossible: every file byte is covered by
                // magic, version, length or CRC) — never a silent change.
                prop_assert_eq!(got, payload, "corruption at byte {} silently mis-decoded", pos);
                prop_assert!(false, "corruption at byte {} was accepted", pos);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A WAL cut at any byte offset recovers a strict prefix of the
    /// appended records, each byte-identical to what was written.
    #[test]
    fn wal_cut_recovers_exact_record_prefix(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..40),
            1..8,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("cut", (cut_frac * 1e6) as u64);
        let path = dir.join("log.mtwal");
        {
            let mut w = WalWriter::create(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (rec, _w) = WalWriter::open_recover(&path).unwrap();
        prop_assert!(rec.records.len() <= records.len());
        for (got, want) in rec.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
        // Whatever survives is exactly the records that fit before the cut.
        let mut offset = 0usize;
        let mut fit = 0usize;
        for r in &records {
            offset += 8 + r.len();
            if offset <= cut {
                fit += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(rec.records.len(), fit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Torn final frame at *any* byte offset — from its first header
    /// byte to one short of complete — possibly with a flipped bit
    /// inside the torn region: recovery always keeps exactly the intact
    /// prefix, truncates the file to it, and the re-opened writer
    /// continues the log from there.
    #[test]
    fn torn_final_frame_at_any_offset_recovers_and_resumes(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..40),
            1..6,
        ),
        tear_frac in 0.0f64..1.0,
        flip in (proptest::bool::ANY, 0usize..10_000, 0u32..8),
    ) {
        let dir = scratch("tear", (tear_frac * 1e6) as u64);
        let path = dir.join("log.mtwal");
        {
            let mut w = WalWriter::create(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let final_frame = 8 + records.last().unwrap().len();
        let prefix_len = full.len() - final_frame;
        // Cut strictly inside the final frame: [prefix_len, full.len()).
        let cut = prefix_len + ((final_frame as f64) * tear_frac) as usize % final_frame;
        let mut torn = full[..cut].to_vec();
        let (do_flip, pos, bit) = flip;
        if do_flip && cut > prefix_len {
            let p = prefix_len + pos % (cut - prefix_len);
            torn[p] ^= 1 << bit;
        }
        std::fs::write(&path, &torn).unwrap();
        let (rec, mut w) = WalWriter::open_recover(&path).unwrap();
        prop_assert_eq!(rec.records.len(), records.len() - 1, "cut at {}", cut);
        for (got, want) in rec.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(rec.tail_truncated || cut == prefix_len);
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), prefix_len as u64);
        // The recovered writer continues the log.
        w.append(b"resumed").unwrap();
        w.sync().unwrap();
        let (rec2, _) = WalWriter::open_recover(&path).unwrap();
        prop_assert_eq!(rec2.records.len(), records.len());
        prop_assert_eq!(rec2.records.last().unwrap().as_slice(), b"resumed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A *complete* final frame with any single bit flipped anywhere in
    /// it (header or body) is dropped by the CRC/length checks — the
    /// intact prefix survives and the log accepts new appends.
    #[test]
    fn flipped_bit_in_final_frame_drops_only_that_record(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 1..40),
            1..6,
        ),
        pos in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let dir = scratch("flipwal", (pos as u64) << 3 | u64::from(bit));
        let path = dir.join("log.mtwal");
        {
            let mut w = WalWriter::create(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        let mut full = std::fs::read(&path).unwrap();
        let final_frame = 8 + records.last().unwrap().len();
        let prefix_len = full.len() - final_frame;
        let p = prefix_len + pos % final_frame;
        full[p] ^= 1 << bit;
        std::fs::write(&path, &full).unwrap();
        let (rec, mut w) = WalWriter::open_recover(&path).unwrap();
        prop_assert_eq!(rec.records.len(), records.len() - 1, "flip at {}", p);
        for (got, want) in rec.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(rec.tail_truncated);
        w.append(b"after corruption").unwrap();
        w.sync().unwrap();
        let (rec2, _) = WalWriter::open_recover(&path).unwrap();
        prop_assert_eq!(rec2.records.last().unwrap().as_slice(), b"after corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
