//! Checksums: CRC32 (IEEE 802.3, the zlib polynomial) for on-disk
//! integrity and FNV-1a/64 for cheap in-memory fingerprints.

/// The IEEE CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`. Matches zlib's `crc32(0, ...)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Streaming FNV-1a 64-bit hasher: a cheap, deterministic fingerprint
/// for scenario identity and WAL step digests. Not cryptographic.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a `u64` (little-endian) into the running hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64`'s bits into the running hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a/64 of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_any_single_byte_flip() {
        let data = b"checkpoint payload with enough bytes to matter".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut copy = data.clone();
            copy[i] ^= 0x01;
            assert_ne!(crc32(&copy), base, "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171F73967E8);
    }
}
