//! The snapshot container: one self-validating file per checkpoint.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MTSN"
//! 4       4     format version (FORMAT_VERSION)
//! 8       8     payload length in bytes
//! 16      4     CRC32 of the payload
//! 20      n     payload (opaque to this layer)
//! ```
//!
//! Writes go to a `.tmp` sibling first and are renamed into place after
//! `sync_all`, so under the final name a snapshot either exists in full
//! or not at all — a crash mid-checkpoint leaves the previous snapshot
//! untouched and at worst a stray temp file that the next write
//! replaces.

use crate::crc::crc32;
use crate::PersistError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"MTSN";

/// Container format version written by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 20;

/// Writes `payload` as a snapshot at `path`, atomically. Returns the
/// total file size in bytes.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<u64, PersistError> {
    let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    file_bytes.extend_from_slice(&MAGIC);
    file_bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    file_bytes.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Best-effort directory sync so the rename itself is durable; some
    // filesystems refuse to fsync a directory handle — not fatal.
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(file_bytes.len() as u64)
}

/// Reads and validates the snapshot at `path`, returning its payload.
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>, PersistError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < HEADER_LEN {
        return Err(PersistError::Corrupt(format!(
            "{}: {} bytes is shorter than the header",
            path.display(),
            raw.len()
        )));
    }
    if raw[0..4] != MAGIC {
        return Err(PersistError::Corrupt(format!("{}: bad magic", path.display())));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version, expected: FORMAT_VERSION });
    }
    let len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"));
    let payload = &raw[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(PersistError::Corrupt(format!(
            "{}: header claims {len} payload bytes, file holds {}",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != stored_crc {
        return Err(PersistError::Corrupt(format!(
            "{}: payload checksum mismatch",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mtshare-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_payload() {
        let dir = tmpdir("rt");
        let p = dir.join("a.mtsnap");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let size = write_snapshot(&p, &payload).unwrap();
        assert_eq!(size as usize, HEADER_LEN + payload.len());
        assert_eq!(read_snapshot(&p).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = tmpdir("rw");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"old state").unwrap();
        write_snapshot(&p, b"new state").unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), b"new state");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let dir = tmpdir("flip");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"state that must not silently change").unwrap();
        let good = fs::read(&p).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&p, &bad).unwrap();
            assert!(read_snapshot(&p).is_err(), "corruption at byte {i} was not rejected");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmpdir("trunc");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"0123456789").unwrap();
        let good = fs::read(&p).unwrap();
        for keep in 0..good.len() {
            fs::write(&p, &good[..keep]).unwrap();
            assert!(read_snapshot(&p).is_err(), "truncation to {keep} bytes accepted");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_is_rejected() {
        let dir = tmpdir("ver");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"payload").unwrap();
        let mut raw = fs::read(&p).unwrap();
        raw[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&p, &raw).unwrap();
        assert!(matches!(read_snapshot(&p), Err(PersistError::UnsupportedVersion { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
