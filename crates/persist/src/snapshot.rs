//! The snapshot container: one self-validating file per checkpoint.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MTSN"
//! 4       4     format version (FORMAT_VERSION)
//! 8       8     payload length in bytes
//! 16      4     CRC32 of the payload
//! 20      n     payload (opaque to this layer)
//! ```
//!
//! Writes go to a `.tmp` sibling first and are renamed into place after
//! `sync_all`, so under the final name a snapshot either exists in full
//! or not at all — a crash mid-checkpoint leaves the previous snapshot
//! untouched and at worst a stray temp file that the next write
//! replaces.

use crate::crc::crc32;
use crate::fault::{self, FaultInjector, IoFault, IoOp};
use crate::PersistError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"MTSN";

/// Container format version written by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 20;

/// Outcome of a successful snapshot write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Total file size in bytes (header + payload).
    pub bytes: u64,
    /// The filesystem refused to fsync the parent directory
    /// (`Unsupported`): the rename's durability is best-effort on this
    /// filesystem. Tolerated, but surfaced so callers can count it —
    /// any *other* directory-fsync failure is propagated as an error.
    pub dir_sync_unsupported: bool,
}

/// Writes `payload` as a snapshot at `path`, atomically.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<SnapshotStats, PersistError> {
    write_snapshot_with(path, payload, None)
}

/// [`write_snapshot`] with an optional fault injector consulted before
/// the temp-file write (`SnapshotWrite`) and the directory fsync
/// (`DirSync`).
pub fn write_snapshot_with(
    path: &Path,
    payload: &[u8],
    injector: Option<&dyn FaultInjector>,
) -> Result<SnapshotStats, PersistError> {
    let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    file_bytes.extend_from_slice(&MAGIC);
    file_bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    file_bytes.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    if let Some(f) = injector.and_then(|i| i.check(IoOp::SnapshotWrite)) {
        return Err(inject_write_fault(f, &tmp, &file_bytes));
    }
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Directory fsync makes the rename itself durable. "This filesystem
    // cannot fsync a directory" is tolerated and reported via the
    // stats; a real failure means the snapshot's existence may not
    // survive a power cut — that is propagated, not swallowed.
    let mut dir_sync_unsupported = false;
    if let Some(parent) = path.parent() {
        let injected = injector.and_then(|i| i.check(IoOp::DirSync));
        match injected {
            Some(IoFault::Unsupported) => dir_sync_unsupported = true,
            Some(_) => return Err(PersistError::SyncFailed(fault::eio())),
            None => match File::open(parent).and_then(|d| d.sync_all()) {
                Ok(()) => {}
                Err(e) if dir_sync_is_unsupported(&e) => dir_sync_unsupported = true,
                Err(e) => return Err(PersistError::SyncFailed(e)),
            },
        }
    }
    Ok(SnapshotStats { bytes: file_bytes.len() as u64, dir_sync_unsupported })
}

/// Whether a directory-fsync error means "this filesystem does not
/// support the operation" (ENOTSUP/EINVAL/`Unsupported`) rather than a
/// real durability failure.
fn dir_sync_is_unsupported(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::Unsupported || matches!(e.raw_os_error(), Some(95 | 22))
}

/// Materialises an injected snapshot-write fault. A short write leaves
/// a partial *temp* file and never renames — demonstrating that the
/// final name stays atomic even under a torn write.
fn inject_write_fault(f: IoFault, tmp: &Path, file_bytes: &[u8]) -> PersistError {
    match f {
        IoFault::ShortWrite { keep_permille } => {
            let keep = file_bytes.len() * usize::from(keep_permille.min(999)) / 1000;
            let _ = fs::write(tmp, &file_bytes[..keep]);
            PersistError::Io(fault::eio())
        }
        IoFault::NoSpace => PersistError::Io(fault::enospc()),
        IoFault::SyncFailed => PersistError::SyncFailed(fault::eio()),
        IoFault::Unsupported | IoFault::CorruptByte { .. } => PersistError::Io(fault::eio()),
    }
}

/// Reads and validates the snapshot at `path`, returning its payload.
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>, PersistError> {
    read_snapshot_with(path, None)
}

/// [`read_snapshot`] with an optional fault injector: a `CorruptByte`
/// fault flips one byte of the raw file image before validation, so
/// the CRC/format checks are exercised against real corruption.
pub fn read_snapshot_with(
    path: &Path,
    injector: Option<&dyn FaultInjector>,
) -> Result<Vec<u8>, PersistError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if let Some(f) = injector.and_then(|i| i.check(IoOp::SnapshotRead)) {
        match f {
            IoFault::CorruptByte { offset, mask } if !raw.is_empty() => {
                let i = (offset % raw.len() as u64) as usize;
                raw[i] ^= if mask == 0 { 0x40 } else { mask };
            }
            IoFault::CorruptByte { .. } => {}
            _ => return Err(PersistError::Io(fault::eio())),
        }
    }
    if raw.len() < HEADER_LEN {
        return Err(PersistError::Corrupt(format!(
            "{}: {} bytes is shorter than the header",
            path.display(),
            raw.len()
        )));
    }
    if raw[0..4] != MAGIC {
        return Err(PersistError::Corrupt(format!("{}: bad magic", path.display())));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version, expected: FORMAT_VERSION });
    }
    let len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"));
    let payload = &raw[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(PersistError::Corrupt(format!(
            "{}: header claims {len} payload bytes, file holds {}",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != stored_crc {
        return Err(PersistError::Corrupt(format!(
            "{}: payload checksum mismatch",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mtshare-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_payload() {
        let dir = tmpdir("rt");
        let p = dir.join("a.mtsnap");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let stats = write_snapshot(&p, &payload).unwrap();
        assert_eq!(stats.bytes as usize, HEADER_LEN + payload.len());
        assert!(!stats.dir_sync_unsupported, "tmpfs supports directory fsync");
        assert_eq!(read_snapshot(&p).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = tmpdir("rw");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"old state").unwrap();
        write_snapshot(&p, b"new state").unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), b"new state");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let dir = tmpdir("flip");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"state that must not silently change").unwrap();
        let good = fs::read(&p).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&p, &bad).unwrap();
            assert!(read_snapshot(&p).is_err(), "corruption at byte {i} was not rejected");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmpdir("trunc");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"0123456789").unwrap();
        let good = fs::read(&p).unwrap();
        for keep in 0..good.len() {
            fs::write(&p, &good[..keep]).unwrap();
            assert!(read_snapshot(&p).is_err(), "truncation to {keep} bytes accepted");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_is_rejected() {
        let dir = tmpdir("ver");
        let p = dir.join("a.mtsnap");
        write_snapshot(&p, b"payload").unwrap();
        let mut raw = fs::read(&p).unwrap();
        raw[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&p, &raw).unwrap();
        assert!(matches!(read_snapshot(&p), Err(PersistError::UnsupportedVersion { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
