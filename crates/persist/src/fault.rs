//! Fault-injection seam for the storage layer.
//!
//! Every durable I/O operation in this crate (WAL appends/syncs,
//! snapshot writes/reads, directory fsyncs) funnels through an optional
//! [`FaultInjector`] before touching the filesystem. Production runs
//! carry no injector and pay one `Option` check; test harnesses and the
//! CLI's `--failpoints` flag install a deterministic plan (see
//! `mtshare-chaos`'s `failpoint` module) that makes a chosen call fail
//! in a chosen way — ENOSPC, a lost fsync, a torn frame, a flipped
//! byte on read-back.
//!
//! The injector lives *here*, not in `mtshare-chaos`, because this
//! crate is dependency-free and everything else depends on it: the
//! trait is the seam, the chaos crate supplies the seeded plan.

use std::fmt;
use std::io;

/// The durable I/O operations that can be failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// One `WalWriter::append` call (buffered frame write).
    WalAppend,
    /// One `WalWriter::sync` call (flush + fsync).
    WalSync,
    /// One atomic snapshot write (temp file + rename).
    SnapshotWrite,
    /// One snapshot read-back (validation included).
    SnapshotRead,
    /// The directory fsync making a snapshot rename durable.
    DirSync,
}

impl IoOp {
    /// Every operation, in a fixed order (stable indices for counters).
    pub const ALL: [IoOp; 5] =
        [IoOp::WalAppend, IoOp::WalSync, IoOp::SnapshotWrite, IoOp::SnapshotRead, IoOp::DirSync];

    /// Dense index into [`IoOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            IoOp::WalAppend => 0,
            IoOp::WalSync => 1,
            IoOp::SnapshotWrite => 2,
            IoOp::SnapshotRead => 3,
            IoOp::DirSync => 4,
        }
    }

    /// Stable label for telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            IoOp::WalAppend => "wal_append",
            IoOp::WalSync => "wal_sync",
            IoOp::SnapshotWrite => "snapshot_write",
            IoOp::SnapshotRead => "snapshot_read",
            IoOp::DirSync => "dir_sync",
        }
    }
}

/// How an injected operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// ENOSPC before any byte reaches the file.
    NoSpace,
    /// The data reaches the OS (flush succeeds) but the fsync is lost —
    /// the durability guarantee fails, not the write itself.
    SyncFailed,
    /// The filesystem does not support the operation (directory fsync
    /// on certain filesystems) — tolerated and counted, never fatal.
    Unsupported,
    /// Only a prefix of the frame reaches the file before EIO: a torn
    /// frame at an arbitrary byte offset. `keep_permille` selects how
    /// much of the frame survives (0..=999, thousandths).
    ShortWrite {
        /// Thousandths of the frame written before the failure.
        keep_permille: u16,
    },
    /// On read-back, XOR `mask` into the byte at `offset` (wrapped into
    /// the file length) before validation — a silent-corruption probe
    /// that the CRC/format checks must catch.
    CorruptByte {
        /// Byte position, taken modulo the file length.
        offset: u64,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
}

/// A deterministic fault source consulted by the storage layer.
///
/// `check` is called once per I/O operation *before* the real work; a
/// `Some(fault)` makes that call fail as described by the fault. The
/// injector owns whatever call-counting it needs — the storage layer
/// carries no schedule state.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// Returns the fault the current `op` call should suffer, if any.
    fn check(&self, op: IoOp) -> Option<IoFault>;
}

/// ENOSPC as a real `io::Error` (raw errno 28 — `ErrorKind::StorageFull`
/// needs a newer MSRV than this workspace pins).
pub fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// EIO as a real `io::Error` (raw errno 5).
pub fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_match_all_order() {
        for (i, op) in IoOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn errno_constructors_classify() {
        assert_eq!(enospc().raw_os_error(), Some(28));
        assert_eq!(eio().raw_os_error(), Some(5));
    }
}
