//! Crash-consistent persistence for the mT-Share dispatcher.
//!
//! Three layers, all dependency-free:
//!
//! - [`codec`]: a versionless little-endian binary codec ([`Encoder`],
//!   [`Decoder`]) plus the [`Persist`] trait every piece of dispatcher
//!   state implements. The codec is deliberately dumb — fixed-width
//!   integers, bit-exact `f64`s, length-prefixed sequences — so that a
//!   byte stream has exactly one decoding and round-trips are trivially
//!   checkable by property tests.
//! - [`snapshot`] + [`wal`]: the on-disk containers. A snapshot file is
//!   `magic | format version | payload length | CRC32 | payload`,
//!   written atomically (temp file + rename) so a crash mid-write never
//!   leaves a half-snapshot under the final name. The write-ahead log is
//!   a sequence of `length | CRC32 | payload` records; recovery scans
//!   from the front and truncates at the first torn or corrupt record,
//!   so a crash mid-append loses at most the record being written.
//! - [`dir`]: state-directory management — one WAL plus any number of
//!   step-stamped snapshots; [`StateDir::load_newest_valid`] walks
//!   snapshots newest-first and falls back past corrupt ones.
//!
//! What this crate does *not* know about: the simulator, the schemes, or
//! what the bytes mean. Higher crates implement [`Persist`] for their
//! own state and decide what is snapshotted versus rebuilt cold (see
//! DESIGN.md, "Persistence & warm restart").

pub mod codec;
pub mod crc;
pub mod dir;
pub mod fault;
pub mod snapshot;
pub mod wal;

pub use codec::{DecodeError, Decoder, Encoder, Persist};
pub use crc::{crc32, fnv1a_64, Fnv64};
pub use dir::StateDir;
pub use fault::{FaultInjector, IoFault, IoOp};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotStats};
pub use wal::{WalRecovery, WalWriter};

/// Everything that can go wrong while persisting or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Data reached the OS but an fsync failed: the write itself
    /// succeeded, its *durability* did not. Distinct from [`Io`]
    /// (`PersistError::Io`) so degradation policies can tell a lost
    /// durability guarantee from a failed write.
    SyncFailed(std::io::Error),
    /// A container failed validation (bad magic, length or checksum).
    Corrupt(String),
    /// The container's format version is not the one this build writes.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload decoded but does not belong to this run (wrong
    /// scenario, scheme or configuration fingerprint).
    Mismatch(String),
    /// The payload bytes could not be decoded.
    Decode(DecodeError),
}

/// Coarse classification of a [`PersistError`] for policy decisions:
/// degrade-vs-fail branches on *what kind* of failure occurred, not on
/// the exact error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The device is full (ENOSPC) — retrying in place cannot help.
    NoSpace,
    /// An fsync was lost; on-disk state may lag the in-memory state.
    SyncLost,
    /// On-disk bytes are damaged or unintelligible (torn frame, bad
    /// CRC, wrong version, decode failure, manifest mismatch).
    Corruption,
    /// Any other I/O failure — possibly transient.
    Transient,
}

impl FaultClass {
    /// Stable label for telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NoSpace => "no_space",
            FaultClass::SyncLost => "sync_lost",
            FaultClass::Corruption => "corruption",
            FaultClass::Transient => "transient",
        }
    }
}

impl PersistError {
    /// Classifies this error for the degradation policy.
    pub fn class(&self) -> FaultClass {
        match self {
            PersistError::Io(e) if e.raw_os_error() == Some(28) => FaultClass::NoSpace,
            PersistError::Io(_) => FaultClass::Transient,
            PersistError::SyncFailed(_) => FaultClass::SyncLost,
            PersistError::Corrupt(_)
            | PersistError::UnsupportedVersion { .. }
            | PersistError::Mismatch(_)
            | PersistError::Decode(_) => FaultClass::Corruption,
        }
    }
}

/// What a run does when the storage layer fails mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Fail fast: sync what can be synced, then stop with a typed
    /// storage-fault outcome (the CLI maps it to a dedicated exit
    /// code). The state dir stays where it is for a `--resume`.
    #[default]
    Strict,
    /// Keep serving from memory: the state-dir generation is
    /// quarantined (renamed aside), persistence is disabled for the
    /// rest of the run, and a warning event is emitted. Durability is
    /// lost; the trace contract is not.
    Degrade,
}

impl Durability {
    /// Parses the `--durability` CLI value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(Durability::Strict),
            "degrade" => Ok(Durability::Degrade),
            other => Err(format!("unknown durability policy `{other}` (strict|degrade)")),
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::SyncFailed(e) => write!(f, "fsync failed (durability lost): {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt state file: {what}"),
            PersistError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported format version {found} (expected {expected})")
            }
            PersistError::Mismatch(what) => write!(f, "state mismatch: {what}"),
            PersistError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        PersistError::Decode(e)
    }
}
