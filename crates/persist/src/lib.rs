//! Crash-consistent persistence for the mT-Share dispatcher.
//!
//! Three layers, all dependency-free:
//!
//! - [`codec`]: a versionless little-endian binary codec ([`Encoder`],
//!   [`Decoder`]) plus the [`Persist`] trait every piece of dispatcher
//!   state implements. The codec is deliberately dumb — fixed-width
//!   integers, bit-exact `f64`s, length-prefixed sequences — so that a
//!   byte stream has exactly one decoding and round-trips are trivially
//!   checkable by property tests.
//! - [`snapshot`] + [`wal`]: the on-disk containers. A snapshot file is
//!   `magic | format version | payload length | CRC32 | payload`,
//!   written atomically (temp file + rename) so a crash mid-write never
//!   leaves a half-snapshot under the final name. The write-ahead log is
//!   a sequence of `length | CRC32 | payload` records; recovery scans
//!   from the front and truncates at the first torn or corrupt record,
//!   so a crash mid-append loses at most the record being written.
//! - [`dir`]: state-directory management — one WAL plus any number of
//!   step-stamped snapshots; [`StateDir::load_newest_valid`] walks
//!   snapshots newest-first and falls back past corrupt ones.
//!
//! What this crate does *not* know about: the simulator, the schemes, or
//! what the bytes mean. Higher crates implement [`Persist`] for their
//! own state and decide what is snapshotted versus rebuilt cold (see
//! DESIGN.md, "Persistence & warm restart").

pub mod codec;
pub mod crc;
pub mod dir;
pub mod snapshot;
pub mod wal;

pub use codec::{DecodeError, Decoder, Encoder, Persist};
pub use crc::{crc32, fnv1a_64, Fnv64};
pub use dir::StateDir;
pub use snapshot::{read_snapshot, write_snapshot};
pub use wal::{WalRecovery, WalWriter};

/// Everything that can go wrong while persisting or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A container failed validation (bad magic, length or checksum).
    Corrupt(String),
    /// The container's format version is not the one this build writes.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload decoded but does not belong to this run (wrong
    /// scenario, scheme or configuration fingerprint).
    Mismatch(String),
    /// The payload bytes could not be decoded.
    Decode(DecodeError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt state file: {what}"),
            PersistError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported format version {found} (expected {expected})")
            }
            PersistError::Mismatch(what) => write!(f, "state mismatch: {what}"),
            PersistError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        PersistError::Decode(e)
    }
}
