//! The binary codec: fixed-width little-endian primitives, bit-exact
//! floats, length-prefixed sequences. No varints, no alignment, no
//! self-description — the schema lives in the [`Persist`] impls, and the
//! snapshot container's format version gates incompatible changes.

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the value did.
    Eof {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The bytes were readable but semantically invalid for the type.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Eof { need, have } => {
                write!(f, "unexpected end of stream (need {need} bytes, have {have})")
            }
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly (round-trips NaNs and signed zeros).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed sequence of encodable values.
    pub fn seq<T: Persist>(&mut self, items: &[T]) {
        self.usize(items.len());
        for item in items {
            item.encode(self);
        }
    }
}

/// Cursor over an encoded byte stream.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (decoders should end here —
    /// trailing garbage means the schema and the stream disagree).
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof { need: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written by [`Encoder::usize`], bounds-checked
    /// against the remaining stream so a corrupt length cannot trigger a
    /// huge allocation.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("length overflows usize"))
    }

    /// Reads a bit-exact `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool byte is neither 0 nor 1")),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Invalid("string is not UTF-8"))
    }

    /// Reads a length-prefixed sequence of decodable values.
    pub fn seq<T: Persist>(&mut self) -> Result<Vec<T>, DecodeError> {
        let n = self.usize()?;
        // A corrupt length must not pre-allocate gigabytes: each element
        // is at least one byte, so `n` can never exceed what remains.
        if n > self.remaining() {
            return Err(DecodeError::Eof { need: n, have: self.remaining() });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

/// State that can be written to and rebuilt from the binary codec.
///
/// The contract — enforced by proptests in the implementing crates — is
/// `decode(encode(x)) == x`, with *no* bytes left over.
pub trait Persist: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Reads one value back from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: this value alone as a byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: decodes a value that must span exactly `bytes`.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if !dec.is_done() {
            return Err(DecodeError::Invalid("trailing bytes after value"));
        }
        Ok(v)
    }
}

impl Persist for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u8()
    }
}

impl Persist for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u32()
    }
}

impl Persist for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u64()
    }
}

impl Persist for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.usize()
    }
}

impl Persist for u16 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(u32::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        u16::try_from(dec.u32()?).map_err(|_| DecodeError::Invalid("u16 out of range"))
    }
}

impl Persist for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.f64()
    }
}

impl Persist for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.bool()
    }
}

impl Persist for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.str()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.seq()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(DecodeError::Invalid("Option tag is neither 0 nor 1")),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist, D: Persist> Persist for (A, B, C, D) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
        self.3.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?, D::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX);
        enc.f64(-0.0);
        enc.f64(f64::INFINITY);
        enc.bool(true);
        enc.str("naïve ✓");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        let z = dec.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0_f64).to_bits(), "signed zero must survive");
        assert_eq!(dec.f64().unwrap(), f64::INFINITY);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "naïve ✓");
        assert!(dec.is_done());
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = weird.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn sequences_and_options_round_trip() {
        let v: Vec<(u32, Option<String>)> =
            vec![(1, None), (2, Some("x".into())), (3, Some(String::new()))];
        let bytes = v.to_bytes();
        assert_eq!(Vec::<(u32, Option<String>)>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let bytes = 12345u64.to_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(u64::decode(&mut dec), Err(DecodeError::Eof { .. })));
    }

    #[test]
    fn corrupt_sequence_length_cannot_allocate() {
        // A length claiming more elements than bytes remain must fail
        // fast instead of reserving memory for it.
        let mut enc = Encoder::new();
        enc.usize(usize::MAX / 2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.seq::<u8>(), Err(DecodeError::Eof { .. })));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(DecodeError::Invalid("trailing bytes after value"))
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        assert!(matches!(bool::from_bytes(&[2]), Err(DecodeError::Invalid(_))));
        assert!(matches!(Option::<u8>::from_bytes(&[9]), Err(DecodeError::Invalid(_))));
    }
}
