//! The write-ahead log: a flat sequence of checksummed records.
//!
//! Record framing (little-endian):
//!
//! ```text
//! [payload length: u32] [CRC32 of payload: u32] [payload bytes]
//! ```
//!
//! Appends are buffered; [`WalWriter::sync`] flushes and fsyncs. A crash
//! mid-append leaves a *torn tail*: a final record whose header or body
//! is incomplete, or whose checksum does not match. Recovery scans from
//! the front, keeps every valid record, and truncates the file at the
//! first invalid byte — so the log never resurrects a half-written
//! record, and a re-opened writer continues from the last good one.

use crate::crc::crc32;
use crate::fault::{self, FaultInjector, IoFault, IoOp};
use crate::PersistError;
use std::fs::OpenOptions;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Per-record header bytes.
const RECORD_HEADER: usize = 8;

/// Records larger than this are treated as corruption, not data — the
/// dispatcher's records are tens of bytes; a huge length is a scrambled
/// header.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// The valid prefix of a WAL file.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the valid prefix (the offset recovery truncated to).
    pub valid_len: u64,
    /// Whether a torn or corrupt tail was dropped.
    pub tail_truncated: bool,
}

/// Scans `bytes`, splitting the valid record prefix from any torn tail.
fn scan(bytes: &[u8]) -> WalRecovery {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = bytes.len() - pos;
        if rest == 0 {
            return WalRecovery { records, valid_len: pos as u64, tail_truncated: false };
        }
        if rest < RECORD_HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break; // scrambled header
        }
        let body_start = pos + RECORD_HEADER;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break; // torn body
        }
        let body = &bytes[body_start..body_end];
        if crc32(body) != stored_crc {
            break; // corrupt body (or a header overwritten mid-crash)
        }
        records.push(body.to_vec());
        pos = body_end;
    }
    WalRecovery { records, valid_len: pos as u64, tail_truncated: true }
}

/// Append handle for a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<std::fs::File>,
    appended: u64,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` and returns an empty
    /// writer — the start-of-run path.
    pub fn create(path: &Path) -> Result<Self, PersistError> {
        let f = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { out: BufWriter::new(f), appended: 0, injector: None })
    }

    /// Installs a fault injector consulted before every append/sync.
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Opens the log at `path`, recovering its valid prefix: intact
    /// records are returned, any torn tail is physically truncated away,
    /// and the writer is positioned to append after the last good
    /// record.
    pub fn open_recover(path: &Path) -> Result<(WalRecovery, Self), PersistError> {
        // `truncate(false)` is the point: the valid prefix must survive.
        let mut f =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let recovery = scan(&bytes);
        if recovery.tail_truncated {
            f.set_len(recovery.valid_len)?;
            f.sync_all()?;
        }
        f.seek(SeekFrom::Start(recovery.valid_len))?;
        Ok((recovery, Self { out: BufWriter::new(f), appended: 0, injector: None }))
    }

    /// Appends one record. Buffered — call [`WalWriter::sync`] to make
    /// it durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        assert!(payload.len() as u64 <= u64::from(MAX_RECORD), "WAL record too large");
        if let Some(f) = self.injector.as_ref().and_then(|i| i.check(IoOp::WalAppend)) {
            return Err(self.inject_append_fault(f, payload));
        }
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.appended += (RECORD_HEADER + payload.len()) as u64;
        Ok(())
    }

    /// Materialises an injected append fault. A short write leaves a
    /// genuinely torn frame on disk — the same bytes a crash mid-append
    /// would leave — so recovery paths see the real thing.
    fn inject_append_fault(&mut self, f: IoFault, payload: &[u8]) -> PersistError {
        match f {
            IoFault::ShortWrite { keep_permille } => {
                let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&crc32(payload).to_le_bytes());
                frame.extend_from_slice(payload);
                let keep = frame.len() * usize::from(keep_permille.min(999)) / 1000;
                let _ = self.out.flush();
                let mut raw = self.out.get_ref();
                let _ = raw.write_all(&frame[..keep]);
                let _ = raw.sync_all();
                PersistError::Io(fault::eio())
            }
            IoFault::NoSpace => PersistError::Io(fault::enospc()),
            IoFault::SyncFailed | IoFault::Unsupported | IoFault::CorruptByte { .. } => {
                PersistError::Io(fault::eio())
            }
        }
    }

    /// Flushes buffered appends and fsyncs the file. A failed flush is
    /// an ordinary [`PersistError::Io`]; a failed fsync is the typed
    /// [`PersistError::SyncFailed`] — the bytes reached the OS, their
    /// durability did not.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.out.flush()?;
        if let Some(f) = self.injector.as_ref().and_then(|i| i.check(IoOp::WalSync)) {
            // The flush above succeeded: data is in the OS page cache,
            // exactly the state a real lost fsync leaves behind.
            let _ = f;
            return Err(PersistError::SyncFailed(fault::eio()));
        }
        self.out.get_ref().sync_all().map_err(PersistError::SyncFailed)?;
        Ok(())
    }

    /// Bytes appended through this writer (not counting recovered ones).
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mtshare-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d.join("log.mtwal")
    }

    fn write_records(path: &Path, records: &[&[u8]]) {
        let mut w = WalWriter::create(path).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
    }

    #[test]
    fn append_then_recover_round_trips() {
        let p = tmpfile("rt");
        write_records(&p, &[b"one", b"", b"three records"]);
        let (rec, _w) = WalWriter::open_recover(&p).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"".to_vec(), b"three records".to_vec()]);
        assert!(!rec.tail_truncated);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let p = tmpfile("torn");
        write_records(&p, &[b"alpha", b"beta", b"gamma"]);
        let full = fs::read(&p).unwrap();
        // Cut the file at every possible length: recovery must keep
        // exactly the records whose bytes survive in full.
        for cut in 0..full.len() {
            fs::write(&p, &full[..cut]).unwrap();
            let (rec, mut w) = WalWriter::open_recover(&p).unwrap();
            let expect: usize = [b"alpha".len(), b"beta".len(), b"gamma".len()]
                .iter()
                .scan(0usize, |acc, n| {
                    *acc += RECORD_HEADER + n;
                    Some(*acc)
                })
                .filter(|&end| end <= cut)
                .count();
            assert_eq!(rec.records.len(), expect, "cut at {cut}");
            assert_eq!(fs::metadata(&p).unwrap().len(), rec.valid_len, "cut at {cut}");
            // The recovered writer must be able to continue the log.
            w.append(b"resumed").unwrap();
            w.sync().unwrap();
            let (rec2, _) = WalWriter::open_recover(&p).unwrap();
            assert_eq!(rec2.records.len(), expect + 1, "cut at {cut}");
            assert_eq!(rec2.records.last().unwrap(), b"resumed");
        }
    }

    #[test]
    fn corrupt_middle_record_drops_the_suffix() {
        let p = tmpfile("mid");
        write_records(&p, &[b"keep me", b"corrupt me", b"unreachable"]);
        let mut bytes = fs::read(&p).unwrap();
        let second_body = RECORD_HEADER + b"keep me".len() + RECORD_HEADER;
        bytes[second_body] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        let (rec, _w) = WalWriter::open_recover(&p).unwrap();
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
        assert!(rec.tail_truncated);
    }

    #[test]
    fn scrambled_length_header_is_treated_as_torn() {
        let p = tmpfile("len");
        write_records(&p, &[b"good"]);
        let mut bytes = fs::read(&p).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&p, &bytes).unwrap();
        let (rec, _w) = WalWriter::open_recover(&p).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert!(rec.tail_truncated);
    }

    #[test]
    fn create_truncates_previous_log() {
        let p = tmpfile("fresh");
        write_records(&p, &[b"stale"]);
        let _w = WalWriter::create(&p).unwrap();
        let (rec, _) = WalWriter::open_recover(&p).unwrap();
        assert!(rec.records.is_empty());
    }
}
