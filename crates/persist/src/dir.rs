//! State-directory management: where a run keeps its snapshots and WAL.
//!
//! Layout inside the directory:
//!
//! ```text
//! snap-000000000000.mtsnap    snapshot taken at step 0
//! snap-000000004096.mtsnap    snapshot taken at step 4096
//! ...
//! wal.mtwal                   one log for the whole run; records carry
//!                             their step number, so recovery replays
//!                             only those past the chosen snapshot
//! ```
//!
//! Recovery walks snapshots newest-first and returns the first one that
//! validates, skipping corrupt files instead of failing — the previous
//! checkpoint plus the (longer-lived) WAL still reach the crash point.

use crate::fault::FaultInjector;
use crate::snapshot::{read_snapshot_with, write_snapshot_with, SnapshotStats};
use crate::PersistError;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Extension of snapshot files.
const SNAP_EXT: &str = "mtsnap";
/// File name of the write-ahead log.
const WAL_NAME: &str = "wal.mtwal";

/// A directory holding one run's recoverable state.
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl StateDir {
    /// Opens `root`, creating the directory if needed.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, injector: None })
    }

    /// Installs a fault injector consulted by snapshot reads/writes.
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.root.join(WAL_NAME)
    }

    /// Path of the snapshot taken at `step`.
    pub fn snapshot_path(&self, step: u64) -> PathBuf {
        self.root.join(format!("snap-{step:012}.{SNAP_EXT}"))
    }

    /// Steps with a snapshot file present, ascending. Unparseable file
    /// names are ignored.
    pub fn snapshot_steps(&self) -> Result<Vec<u64>, PersistError> {
        let mut steps = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{SNAP_EXT}")) else { continue };
            let Some(digits) = stem.strip_prefix("snap-") else { continue };
            if let Ok(step) = digits.parse::<u64>() {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Writes `payload` as the snapshot for `step`.
    pub fn write_snapshot(&self, step: u64, payload: &[u8]) -> Result<SnapshotStats, PersistError> {
        write_snapshot_with(&self.snapshot_path(step), payload, self.injector.as_deref())
    }

    /// Loads the newest snapshot that validates, as `(step, payload)`.
    /// Corrupt or unreadable snapshots are skipped (newest-first), so a
    /// damaged latest checkpoint falls back to the one before it.
    /// `Ok(None)` means no valid snapshot exists at all.
    pub fn load_newest_valid(&self) -> Result<Option<(u64, Vec<u8>)>, PersistError> {
        let mut steps = self.snapshot_steps()?;
        steps.reverse();
        for step in steps {
            match read_snapshot_with(&self.snapshot_path(step), self.injector.as_deref()) {
                Ok(payload) => return Ok(Some((step, payload))),
                Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(_) => continue, // corrupt: fall back to an older one
            }
        }
        Ok(None)
    }

    /// Quarantines this state-dir generation: renames the whole
    /// directory to a `<root>.quarantine-N` sibling (first free `N`),
    /// preserving the bad state for post-mortem while freeing the path
    /// for a fresh generation. The degrade durability policy calls this
    /// when the storage layer fails mid-run.
    pub fn quarantine(&self) -> Result<PathBuf, PersistError> {
        let name = self.root.file_name().and_then(|s| s.to_str()).unwrap_or("state");
        for n in 1..10_000u32 {
            let dest = self.root.with_file_name(format!("{name}.quarantine-{n}"));
            if !dest.exists() {
                fs::rename(&self.root, &dest)?;
                return Ok(dest);
            }
        }
        Err(PersistError::Io(std::io::Error::other("too many quarantined generations")))
    }

    /// Removes every snapshot and the WAL — the fresh-run path, so a
    /// reused directory cannot mix state from two runs.
    pub fn reset(&self) -> Result<(), PersistError> {
        for step in self.snapshot_steps()? {
            let _ = fs::remove_file(self.snapshot_path(step));
        }
        let wal = self.wal_path();
        if wal.exists() {
            fs::remove_file(&wal)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtshare-dir-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let sd = StateDir::create(tmpdir("newest")).unwrap();
        sd.write_snapshot(0, b"at step 0").unwrap();
        sd.write_snapshot(128, b"at step 128").unwrap();
        sd.write_snapshot(64, b"at step 64").unwrap();
        let (step, payload) = sd.load_newest_valid().unwrap().unwrap();
        assert_eq!(step, 128);
        assert_eq!(payload, b"at step 128");
        let _ = fs::remove_dir_all(sd.path());
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let sd = StateDir::create(tmpdir("fallback")).unwrap();
        sd.write_snapshot(0, b"good old").unwrap();
        sd.write_snapshot(100, b"doomed").unwrap();
        // Scribble over the newest snapshot's payload.
        let p = sd.snapshot_path(100);
        let mut bytes = fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        let (step, payload) = sd.load_newest_valid().unwrap().unwrap();
        assert_eq!(step, 0);
        assert_eq!(payload, b"good old");
        let _ = fs::remove_dir_all(sd.path());
    }

    #[test]
    fn empty_directory_has_no_snapshot() {
        let sd = StateDir::create(tmpdir("empty")).unwrap();
        assert!(sd.load_newest_valid().unwrap().is_none());
        let _ = fs::remove_dir_all(sd.path());
    }

    #[test]
    fn reset_clears_snapshots_and_wal() {
        let sd = StateDir::create(tmpdir("reset")).unwrap();
        sd.write_snapshot(0, b"x").unwrap();
        fs::write(sd.wal_path(), b"records").unwrap();
        sd.reset().unwrap();
        assert!(sd.snapshot_steps().unwrap().is_empty());
        assert!(!sd.wal_path().exists());
        let _ = fs::remove_dir_all(sd.path());
    }

    #[test]
    fn quarantine_moves_the_generation_aside() {
        let sd = StateDir::create(tmpdir("quarantine")).unwrap();
        sd.write_snapshot(0, b"bad generation").unwrap();
        fs::write(sd.wal_path(), b"records").unwrap();
        let root = sd.path().to_path_buf();
        let q1 = sd.quarantine().unwrap();
        assert!(!root.exists(), "original path must be freed");
        assert!(q1.exists());
        assert!(q1.join(WAL_NAME).exists(), "quarantined state is preserved");
        // A second generation at the same root quarantines to -2.
        let sd2 = StateDir::create(&root).unwrap();
        let q2 = sd2.quarantine().unwrap();
        assert_ne!(q1, q2);
        for d in [q1, q2] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn foreign_files_are_ignored() {
        let sd = StateDir::create(tmpdir("foreign")).unwrap();
        fs::write(sd.path().join("notes.txt"), b"hello").unwrap();
        fs::write(sd.path().join("snap-bogus.mtsnap"), b"junk").unwrap();
        sd.write_snapshot(7, b"real").unwrap();
        assert_eq!(sd.snapshot_steps().unwrap(), vec![7]);
        let _ = fs::remove_dir_all(sd.path());
    }
}
