//! Randomized mini-scenarios: for arbitrary (seeded) workloads, fleets and
//! deadline factors, every scheme must uphold the delivery invariants and
//! the request-accounting identity. Catches event-ordering and replanning
//! bugs that fixed scenarios miss.

use mt_share::chaos::ChaosConfig;
use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, BatchConfig, Scenario, ScenarioConfig, SchemeKind, SimConfig, Simulator,
    WorkloadConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

/// The non-peak comparison set plus the rolling-horizon batch dispatcher:
/// the fuzzers must cover the LAP window path alongside the greedy ones.
const FUZZ_SET: [SchemeKind; 6] = [
    SchemeKind::NoSharing,
    SchemeKind::TShare,
    SchemeKind::PGreedyDp,
    SchemeKind::MtShare,
    SchemeKind::MtSharePro,
    SchemeKind::MtShareBatch,
];

/// Batch sim-config for the batch scheme, `None` otherwise. Window width
/// varies with the seed so flush boundaries land in different places.
fn batch_cfg(kind: SchemeKind, seed: u64) -> Option<BatchConfig> {
    (kind == SchemeKind::MtShareBatch)
        .then_some(BatchConfig { window_s: 10.0 + (seed % 5) as f64 * 15.0, max_retries: 2 })
}

fn run_random(
    seed: u64,
    n_taxis: usize,
    n_requests: usize,
    rho: f64,
    offline_fraction: f64,
    kind: SchemeKind,
) -> (Scenario, mt_share::sim::SimReport) {
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 16, cols: 16, seed: seed % 5, ..Default::default() })
            .unwrap(),
    );
    let cache = PathCache::new(graph.clone());
    let cfg = ScenarioConfig {
        kind: mt_share::sim::ScenarioKind::NonPeak,
        n_taxis,
        capacity: 2 + (seed % 3) as u8,
        rho,
        n_requests,
        duration_s: 1200.0,
        offline_fraction,
        n_historical: 400,
        workload: WorkloadConfig {
            seed: seed.wrapping_mul(31),
            min_trip_m: 400.0,
            ..Default::default()
        },
        seed,
    };
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = kind
        .needs_context()
        .then(|| build_context(&graph, &scenario.historical, 6, PartitionStrategy::Bipartite));
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, None);
    let sim_cfg = SimConfig { batch: batch_cfg(kind, seed), ..SimConfig::default() };
    let sim = Simulator::new(graph, cache, &scenario, sim_cfg);
    let report = sim.run(scheme.as_mut());
    (scenario, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_scenarios_uphold_invariants(
        seed in 0u64..1000,
        n_taxis in 2usize..10,
        n_requests in 5usize..40,
        rho_pct in 105u32..200,
        offline_pct in 0u32..50,
        scheme_pick in 0usize..6,
    ) {
        let kind = FUZZ_SET[scheme_pick];
        let (scenario, r) = run_random(
            seed,
            n_taxis,
            n_requests,
            rho_pct as f64 / 100.0,
            offline_pct as f64 / 100.0,
            kind,
        );
        prop_assert_eq!(r.served + r.rejected, r.n_requests, "{}", r.scheme);
        prop_assert_eq!(r.served, r.served_records.len());
        for rec in &r.served_records {
            let req = &scenario.requests[rec.request as usize];
            prop_assert!(rec.pickup_t >= req.release_time - 1e-6);
            prop_assert!(rec.dropoff_t <= req.deadline + 1e-3,
                "{}: {:?} deadline {}", r.scheme, rec, req.deadline);
            prop_assert!(rec.dropoff_t - rec.pickup_t >= req.direct_cost_s - 1.0);
        }
        // Payment sanity on every random run.
        prop_assert!(r.total_passenger_fares <= r.total_solo_fares + 1e-6);
        prop_assert!((r.total_passenger_fares - r.total_driver_income).abs() < 1e-6);
    }

    /// Under *any* seeded disruption sequence — breakdowns, cancels and
    /// traffic shifts in arbitrary mixes — every request must end in
    /// exactly one terminal state: the accounting identity holds, no rider
    /// is delivered twice, and the runtime invariant sweep stays clean.
    /// (Deadlines are deliberately not audited against the pristine
    /// scenario: recovery renegotiates them by design.)
    #[test]
    fn seeded_disruptions_leave_every_request_in_one_terminal_state(
        seed in 0u64..1000,
        chaos_seed in 0u64..1000,
        breakdowns in 0u32..4,
        cancels in 0u32..6,
        shifts in 0u32..3,
        n_taxis in 2usize..8,
        n_requests in 5usize..30,
        scheme_pick in 0usize..6,
    ) {
        let kind = FUZZ_SET[scheme_pick];
        let graph = Arc::new(
            grid_city(&GridCityConfig { rows: 16, cols: 16, seed: seed % 5, ..Default::default() })
                .unwrap(),
        );
        let cache = PathCache::new(graph.clone());
        let cfg = ScenarioConfig {
            kind: mt_share::sim::ScenarioKind::NonPeak,
            n_taxis,
            capacity: 2 + (seed % 3) as u8,
            rho: 1.6,
            n_requests,
            duration_s: 1200.0,
            offline_fraction: 0.2,
            n_historical: 400,
            workload: WorkloadConfig {
                seed: seed.wrapping_mul(31),
                min_trip_m: 400.0,
                ..Default::default()
            },
            seed,
        };
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        let ctx = kind
            .needs_context()
            .then(|| build_context(&graph, &scenario.historical, 6, PartitionStrategy::Bipartite));
        let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, None);
        let mut chaos = ChaosConfig::with_seed(chaos_seed);
        chaos.breakdowns = breakdowns;
        chaos.cancellations = cancels;
        chaos.traffic_shifts = shifts;
        let sim_cfg = SimConfig {
            chaos: Some(chaos),
            validate_every: Some(90.0),
            batch: batch_cfg(kind, seed),
            ..SimConfig::default()
        };
        let r = Simulator::new(graph, cache, &scenario, sim_cfg).run(scheme.as_mut());

        prop_assert_eq!(r.served + r.rejected, r.n_requests, "{}: {:?}", r.scheme, r);
        prop_assert_eq!(r.served, r.served_records.len());
        prop_assert_eq!(r.invariant_violations, 0, "{}: {:?}", r.scheme, r);
        let mut ids: Vec<u32> = r.served_records.iter().map(|s| s.request).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "a rider was delivered more than once");
    }
}
