//! Contraction-hierarchy equivalence matrix: on every synthetic city
//! shape, CH costs must equal Dijkstra and bidirectional Dijkstra *bit
//! for bit* (dyadic edge quantization makes f32 path sums associative),
//! unpacked CH paths must be valid walks resumming to the exact cost,
//! persisted hierarchies must survive a round trip and never be trusted
//! when stale or corrupt, and — end to end — the simulator's event trace
//! must be byte-identical whichever router produced the costs.

use mt_share::road::{
    grid_city, ring_radial_city, GridCityConfig, NodeId, RingRadialConfig, RoadNetwork,
};
use mt_share::routing::{BidirDijkstra, ChQuery, ContractionHierarchy, Dijkstra};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

/// Every synthetic shape the road crate can generate, small enough for
/// debug-mode preprocessing.
fn shapes() -> Vec<(&'static str, Arc<RoadNetwork>)> {
    vec![
        ("grid_tiny", Arc::new(grid_city(&GridCityConfig::tiny()).unwrap())),
        (
            "grid_30x30",
            Arc::new(
                grid_city(&GridCityConfig { rows: 30, cols: 30, ..Default::default() }).unwrap(),
            ),
        ),
        ("ring_radial", Arc::new(ring_radial_city(&RingRadialConfig::default()).unwrap())),
    ]
}

#[test]
fn ch_costs_equal_both_dijkstras_on_every_shape() {
    for (name, graph) in shapes() {
        let ch = Arc::new(ContractionHierarchy::build(&graph, 2));
        let mut q = ChQuery::new(ch);
        let mut d = Dijkstra::new(&graph);
        let mut bi = BidirDijkstra::new(&graph);
        let mut rng = SmallRng::seed_from_u64(17);
        let n = graph.node_count() as u32;
        for _ in 0..120 {
            let s = NodeId(rng.gen_range(0..n));
            let t = NodeId(rng.gen_range(0..n));
            let want = d.cost(&graph, s, t);
            assert_eq!(bi.cost(&graph, s, t), want, "{name}: bidir vs dijkstra {s}->{t}");
            assert_eq!(q.cost(s, t), want, "{name}: ch vs dijkstra {s}->{t}");
        }
    }
}

#[test]
fn unpacked_ch_paths_are_exact_walks_on_every_shape() {
    for (name, graph) in shapes() {
        let ch = Arc::new(ContractionHierarchy::build(&graph, 2));
        let mut q = ChQuery::new(ch);
        let mut d = Dijkstra::new(&graph);
        let mut rng = SmallRng::seed_from_u64(23);
        let n = graph.node_count() as u32;
        for _ in 0..40 {
            let s = NodeId(rng.gen_range(0..n));
            let t = NodeId(rng.gen_range(0..n));
            let p = q.path(s, t).unwrap();
            assert_eq!(p.start(), s, "{name}");
            assert_eq!(p.end(), t, "{name}");
            // Resummation over original edges must reproduce the reported
            // cost exactly — quantized edges sum associatively in f32.
            let mut total = 0.0f32;
            for w in p.nodes.windows(2) {
                let c = graph.direct_edge_cost(w[0], w[1]);
                assert!(c.is_some(), "{name}: non-adjacent hop {}->{}", w[0], w[1]);
                total += c.unwrap();
            }
            assert_eq!(total as f64, p.cost_s, "{name}: resummed walk {s}->{t}");
            assert_eq!(Some(p.cost_s), d.cost(&graph, s, t), "{name}: vs dijkstra {s}->{t}");
        }
    }
}

#[test]
fn artifact_round_trips_and_stale_or_corrupt_copies_are_rebuilt() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ch-artifacts");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("hierarchy.mtch");

    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let built = ContractionHierarchy::build(&graph, 2);
    built.save(&file).unwrap();

    // Round trip: the loaded hierarchy answers identically.
    let loaded = ContractionHierarchy::load(&file, &graph).unwrap();
    assert_eq!(loaded.shortcut_count(), built.shortcut_count());
    let (mut qa, mut qb) = (ChQuery::new(Arc::new(built)), ChQuery::new(Arc::new(loaded)));
    for (s, t) in [(0u32, 399u32), (37, 201), (399, 0), (5, 5)] {
        assert_eq!(qa.cost(NodeId(s), NodeId(t)), qb.cost(NodeId(s), NodeId(t)));
    }

    // Stale: an artifact built for a *different* graph must be rejected...
    let other =
        Arc::new(grid_city(&GridCityConfig { seed: 991, ..GridCityConfig::tiny() }).unwrap());
    assert_ne!(graph.digest(), other.digest(), "seed must change the digest");
    assert!(ContractionHierarchy::load(&file, &other).is_err());
    // ...and load_or_build falls back to a correct rebuild.
    let (rebuilt, was_rebuilt) = ContractionHierarchy::load_or_build(&file, &other, 2).unwrap();
    assert!(was_rebuilt);
    assert_eq!(rebuilt.graph_digest(), other.digest());

    // Corrupt: truncate the (re-saved) artifact mid-frame.
    let bytes = std::fs::read(&file).unwrap();
    std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ContractionHierarchy::load(&file, &other).is_err());
    let (recovered, was_rebuilt) = ContractionHierarchy::load_or_build(&file, &other, 2).unwrap();
    assert!(was_rebuilt);
    assert_eq!(recovered.graph_digest(), other.digest());
}

/// A healthy artifact from an *incompatible format version* is the one
/// corruption mode that must never trigger the silent rebuild-and-clobber
/// path: the CLI refuses it with a clear message and exit code 2, and the
/// file is left byte-for-byte intact.
#[test]
fn version_mismatched_artifact_exits_2_and_is_left_intact() {
    use mt_share::persist::{write_snapshot, Encoder};
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("artifact-version");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (router, tag) in [("ch", b"MTCH"), ("cch", b"MTCC")] {
        let file = dir.join(format!("{router}.mtsnap"));
        let mut enc = Encoder::new();
        enc.bytes(tag);
        enc.u32(1); // a format version this build does not read
        enc.u64(0);
        write_snapshot(&file, &enc.into_bytes()).unwrap();
        let before = std::fs::read(&file).unwrap();

        let out = Command::new(env!("CARGO_BIN_EXE_mtshare"))
            .args([
                "simulate",
                "--scheme",
                "no-sharing",
                "--rows",
                "8",
                "--cols",
                "8",
                "--taxis",
                "2",
                "--requests",
                "5",
                "--router",
                router,
                "--ch-artifact",
                file.to_str().unwrap(),
            ])
            .output()
            .expect("spawn mtshare");
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "router={router}: {err}");
        assert!(err.contains("version 1"), "router={router}: {err}");
        assert_eq!(std::fs::read(&file).unwrap(), before, "router={router}: file clobbered");
    }
}

fn simulate(dir: &Path, router: &str, parallelism: &str, trace: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_mtshare"))
        .current_dir(dir)
        .args([
            "simulate",
            "--scheme",
            "mt-share",
            "--rows",
            "20",
            "--cols",
            "20",
            "--taxis",
            "15",
            "--requests",
            "150",
            "--nonpeak",
            "--router",
            router,
            "--parallelism",
            parallelism,
            "--trace-out",
            trace,
        ])
        .output()
        .expect("spawn mtshare");
    assert!(
        out.status.success(),
        "router={router} parallelism={parallelism}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The end-to-end correctness bar: swapping the exact cost engine (and
/// the dispatch worker count) must not move a single byte of the trace.
#[test]
fn traces_are_byte_identical_across_routers_and_parallelism() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ch-trace-diff");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    simulate(&dir, "bidir", "1", "bidir-p1.jsonl");
    simulate(&dir, "dijkstra", "1", "dijkstra-p1.jsonl");
    simulate(&dir, "ch", "1", "ch-p1.jsonl");
    simulate(&dir, "ch", "4", "ch-p4.jsonl");
    simulate(&dir, "cch", "1", "cch-p1.jsonl");
    simulate(&dir, "cch", "4", "cch-p4.jsonl");

    let reference = std::fs::read(dir.join("bidir-p1.jsonl")).unwrap();
    assert!(!reference.is_empty(), "baseline trace must not be empty");
    for other in ["dijkstra-p1.jsonl", "ch-p1.jsonl", "ch-p4.jsonl", "cch-p1.jsonl", "cch-p4.jsonl"]
    {
        let got = std::fs::read(dir.join(other)).unwrap();
        assert!(got == reference, "{other} diverges from the bidir baseline trace");
    }
}
