//! I/O torture harness.
//!
//! Three layers of storage-fault coverage:
//!
//! 1. **Kill-at-every-boundary sweep**: a small scenario is killed at
//!    *every* step boundary in turn and resumed; the concatenation of
//!    the two traces must be byte-identical to the uninterrupted run at
//!    each of them — not just at a few hand-picked steps.
//! 2. **Deterministic failpoints**: exact fault schedules (ENOSPC, lost
//!    fsync) are injected into the WAL/snapshot paths and must end in
//!    the documented policy outcome — a typed `StorageFault` stop under
//!    strict durability (resumable), or quarantine-and-continue under
//!    degrade (canonical trace unchanged). Never a panic.
//! 3. **Feed faults end-to-end**: an oversized feed line and a real
//!    mid-line TCP disconnect must exit the `mtshare serve` process
//!    with the typed feed-fault code, and a WAL wedged by a failpoint
//!    during the graceful drain must not lose the drain.

use mt_share::chaos::{FailpointPlan, IoFault, IoOp};
use mt_share::core::PartitionStrategy;
use mt_share::model::DispatchScheme;
use mt_share::obs::{MemorySink, Obs};
use mt_share::road::{grid_city, GridCityConfig, RoadNetwork};
use mt_share::routing::PathCache;
use mt_share::serve::{
    record_feed, serve, AdmissionPolicy, AdmissionQueue, FeedReader, Pace, ServeOptions,
    ServeOutcome,
};
use mt_share::sim::{
    build_context, Durability, PersistConfig, RunOutcome, Scenario, ScenarioConfig, SchemeKind,
    SimConfig, SimEngine, SimReport, Simulator, StepOutcome,
};
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("iotort-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ----------------------------------------------------------- in-process --

struct World {
    graph: Arc<RoadNetwork>,
    scenario: Scenario,
    kind: SchemeKind,
}

impl World {
    /// Small fixed workload: big enough to cross several checkpoint
    /// boundaries, small enough that a per-step sweep stays cheap in
    /// debug builds.
    fn build(kind: SchemeKind, n_requests: usize) -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut cfg = ScenarioConfig::nonpeak(8);
        cfg.n_requests = n_requests;
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        Self { graph, scenario, kind }
    }

    fn scheme(&self) -> Box<dyn DispatchScheme> {
        let ctx = self.kind.needs_context().then(|| {
            build_context(&self.graph, &self.scenario.historical, 12, PartitionStrategy::Bipartite)
        });
        self.kind.build(&self.graph, self.scenario.taxis.len(), ctx, None)
    }

    /// One-shot run capturing the canonical JSONL trace.
    fn run(&self, persist: Option<PersistConfig>) -> (RunOutcome, String) {
        let obs = Obs::enabled();
        let (sink, buf) = MemorySink::new();
        obs.add_sink(Box::new(sink));
        let mut scheme = self.scheme();
        let cfg = SimConfig { persist, ..SimConfig::default() };
        let out = Simulator::new(
            self.graph.clone(),
            PathCache::new(self.graph.clone()),
            &self.scenario,
            cfg,
        )
        .with_obs(obs)
        .run_to_outcome(scheme.as_mut());
        let trace = buf.lock().unwrap().clone();
        (out, trace)
    }
}

fn fresh(dir: &Path) -> PersistConfig {
    PersistConfig { checkpoint_every: 7, ..PersistConfig::new(dir) }
}

fn resume(dir: &Path) -> PersistConfig {
    PersistConfig { checkpoint_every: 7, resume: true, ..PersistConfig::new(dir) }
}

/// The quarantined sibling a degrade-mode run leaves behind
/// (`<state>.quarantine-1` for a fresh test directory).
fn quarantine_of(state: &Path) -> PathBuf {
    let mut name = state.file_name().unwrap().to_os_string();
    name.push(".quarantine-1");
    state.with_file_name(name)
}

#[test]
fn kill_at_every_step_boundary_resumes_byte_identically() {
    let w = World::build(SchemeKind::NoSharing, 25);
    let (base_out, base_trace) = w.run(None);
    let RunOutcome::Finished(_) = base_out else { panic!("baseline must finish") };

    let root = tmpdir("sweep");
    let mut step = 1u64;
    loop {
        assert!(step <= 600, "scenario unexpectedly long for a per-step sweep");
        let dir = root.join(format!("s{step}"));
        let mut pc = fresh(&dir);
        pc.crash_at = Some(mt_share::chaos::CrashPoint::return_at(step));
        let (out, head) = w.run(Some(pc));
        match out {
            // The crash step lies beyond the end of the run: the sweep
            // has covered every boundary.
            RunOutcome::Finished(_) => {
                assert_eq!(head, base_trace, "persisted run must trace identically");
                break;
            }
            RunOutcome::Crashed { step: died_at } => {
                assert_eq!(died_at, step);
                let (out, tail) = w.run(Some(resume(&dir)));
                let RunOutcome::Finished(_) = out else {
                    panic!("resume after kill at step {step} must finish, got {out:?}")
                };
                assert_eq!(
                    format!("{head}{tail}"),
                    base_trace,
                    "kill at step {step}: concatenated trace diverged"
                );
            }
            RunOutcome::StorageFault { step } => panic!("unexpected storage fault at {step}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
        step += 1;
    }
    assert!(step > 10, "sweep must cover a meaningful number of boundaries");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_boundary_faults_stop_typed_and_resume_byte_identically() {
    // Both checkpoint-path faults: the WAL sync that precedes the
    // snapshot, and the snapshot write itself. Call 1 is the step-0
    // checkpoint, call 2 the first periodic one — a clean boundary, so
    // strict durability must stop with nothing half-traced.
    let cases: &[(&str, IoOp, IoFault)] = &[
        ("wal-sync", IoOp::WalSync, IoFault::SyncFailed),
        ("snap-write", IoOp::SnapshotWrite, IoFault::NoSpace),
    ];
    let w = World::build(SchemeKind::MtShare, 25);
    let (base_out, base_trace) = w.run(None);
    let RunOutcome::Finished(base_report) = base_out else { panic!("baseline must finish") };

    for (name, op, fault) in cases {
        let dir = tmpdir(&format!("boundary-{name}"));
        let mut pc = fresh(&dir);
        pc.fault_injector = Some(Arc::new(FailpointPlan::exact(&[(*op, 2, *fault)])));
        let (out, head) = w.run(Some(pc));
        let RunOutcome::StorageFault { step } = out else {
            panic!("{name}: strict durability must stop on the fault, got {out:?}")
        };
        assert_eq!(step, 7, "{name}: the fault fires at the first periodic checkpoint");

        let (out, tail) = w.run(Some(resume(&dir)));
        let RunOutcome::Finished(report) = out else { panic!("{name}: resume must finish") };
        assert_eq!(format!("{head}{tail}"), base_trace, "{name}: boundary fault must be seamless");
        assert_eq!(report.served, base_report.served, "{name}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn midstep_append_fault_strict_stops_and_resume_recovers_the_report() {
    // A WAL-append fault lands *inside* a step, so the head trace may
    // overlap the tail by at most that one step — the resume contract
    // here is the final report, not byte-identity (see DESIGN.md).
    let w = World::build(SchemeKind::MtShare, 25);
    let (base_out, _) = w.run(None);
    let RunOutcome::Finished(base_report) = base_out else { panic!("baseline must finish") };

    let dir = tmpdir("midstep-strict");
    let mut pc = fresh(&dir);
    pc.fault_injector =
        Some(Arc::new(FailpointPlan::exact(&[(IoOp::WalAppend, 11, IoFault::NoSpace)])));
    let (out, _) = w.run(Some(pc));
    let RunOutcome::StorageFault { step } = out else {
        panic!("strict durability must stop on ENOSPC, got {out:?}")
    };
    assert_eq!(step, 11, "the fault hits while step 11's record is being appended");

    let (out, _) = w.run(Some(resume(&dir)));
    let RunOutcome::Finished(report) = out else { panic!("resume must finish") };
    assert_eq!(report.served, base_report.served);
    assert_eq!(report.rejected, base_report.rejected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degrade_mode_quarantines_and_finishes_with_the_canonical_trace() {
    let w = World::build(SchemeKind::MtShare, 25);
    let (base_out, base_trace) = w.run(None);
    let RunOutcome::Finished(base_report) = base_out else { panic!("baseline must finish") };

    let dir = tmpdir("degrade").join("state");
    let mut pc = fresh(&dir);
    pc.durability = Durability::Degrade;
    pc.fault_injector =
        Some(Arc::new(FailpointPlan::exact(&[(IoOp::WalAppend, 11, IoFault::NoSpace)])));
    let (out, trace) = w.run(Some(pc));
    let RunOutcome::Finished(report) = out else {
        panic!("degrade mode must ride out the fault, got {out:?}")
    };
    assert_eq!(trace, base_trace, "degrade must not perturb the canonical trace");
    assert_eq!(report.served, base_report.served);
    assert!(!dir.exists(), "the faulted state dir must have been moved aside");
    assert!(quarantine_of(&dir).exists(), "the bad generation must be quarantined, not deleted");
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
}

// ------------------------------------------------------------ serve loop --

fn serve_world() -> World {
    World::build(SchemeKind::MtShare, 25)
}

fn build_engine(
    w: &World,
    persist: Option<PersistConfig>,
) -> (SimEngine, Box<dyn DispatchScheme>, Obs, Arc<std::sync::Mutex<String>>) {
    let empty = Scenario {
        config: w.scenario.config.clone(),
        historical: w.scenario.historical.clone(),
        requests: Vec::new(),
        taxis: w.scenario.taxis.clone(),
    };
    let mut scheme = w.scheme();
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let cfg = SimConfig { persist, ..SimConfig::default() };
    let sim = Simulator::new(w.graph.clone(), PathCache::new(w.graph.clone()), &empty, cfg)
        .with_obs(obs.clone())
        .with_streaming();
    let engine = SimEngine::new(sim, scheme.as_mut());
    (engine, scheme, obs, buf)
}

fn serve_opts(w: &World, pace: Pace) -> ServeOptions {
    ServeOptions {
        queue: AdmissionQueue { capacity: 1024, policy: AdmissionPolicy::Block },
        pace,
        report_every_s: None,
        n_nodes: w.graph.node_count() as u32,
        heartbeat: None,
        feed_faults: None,
    }
}

fn finished(outcome: ServeOutcome) -> SimReport {
    match outcome {
        ServeOutcome::Finished(r) => *r,
        ServeOutcome::Crashed { step } => panic!("unexpected crash at step {step}"),
        ServeOutcome::StorageFault { step } => panic!("unexpected storage fault at step {step}"),
    }
}

#[test]
fn drain_continues_while_wal_is_wedged_under_degrade() {
    let w = serve_world();
    let feed = record_feed(&w.scenario.requests);
    let pace = Pace::Virtual { quantum_s: 60.0 };

    // Probe where the post-EOF drain phase sits in the step sequence.
    let (mut engine, mut scheme, _, _) = build_engine(&w, None);
    let mut reader =
        FeedReader::new(Cursor::new(feed.clone()), pace, w.graph.node_count() as u32, 0);
    while let Some(burst) = reader.next_burst().unwrap() {
        for e in burst {
            engine.ingest(e);
        }
        assert!(matches!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Idle));
    }
    engine.close_stream();
    let close_step = engine.step_count();
    assert!(matches!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Done));
    let done_step = engine.step_count();
    assert!(done_step > close_step, "workload must leave in-flight work to drain");
    let base_report = engine.finalize(scheme.as_mut()).expect("no persistence, no storage faults");

    // Fault-free serve baseline trace.
    let (engine, mut scheme, _, base_buf) = build_engine(&w, None);
    finished(
        serve(
            engine,
            scheme.as_mut(),
            Cursor::new(feed.clone()),
            serve_opts(&w, pace),
            &Obs::disabled(),
            None,
        )
        .expect("baseline serve"),
    );
    let base_trace = base_buf.lock().unwrap().clone();

    // Wedge the WAL mid-drain: ENOSPC on the append of a step squarely
    // inside the drain phase, degrade policy. The drain must complete
    // and the canonical trace must be unchanged.
    let dir = tmpdir("drain-wedged").join("state");
    let mid_drain = close_step + (done_step - close_step) / 2;
    let mut pc = fresh(&dir);
    pc.durability = Durability::Degrade;
    pc.fault_injector = Some(Arc::new(FailpointPlan::exact(&[(
        IoOp::WalAppend,
        mid_drain as u32,
        IoFault::NoSpace,
    )])));
    let (engine, mut scheme, _, buf) = build_engine(&w, Some(pc));
    let report = finished(
        serve(
            engine,
            scheme.as_mut(),
            Cursor::new(feed),
            serve_opts(&w, pace),
            &Obs::disabled(),
            None,
        )
        .expect("degrade serve must not error"),
    );
    assert_eq!(buf.lock().unwrap().clone(), base_trace, "drain trace diverged under the wedge");
    assert_eq!(report.served, base_report.served);
    assert_eq!(report.rejected, base_report.rejected);
    assert!(quarantine_of(&dir).exists(), "wedged WAL generation must be quarantined");
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
}

// ------------------------------------------------------------------ CLI --

const FEED_FAULT_EXIT: i32 = 43;
const STORAGE_FAULT_EXIT: i32 = 44;

fn mtshare(dir: &Path, argv: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_mtshare"))
        .current_dir(dir)
        .args(argv)
        .output()
        .expect("spawn mtshare")
}

// `--chaos-seed` rides along on every run (not just the faulted one):
// the seed is part of the snapshot's configuration digest, so a resume
// must present the same seed even though `--failpoints` is dropped.
const SMALL_CITY: &[&str] =
    &["--rows", "8", "--cols", "8", "--taxis", "5", "--requests", "30", "--chaos-seed", "11"];

#[test]
fn cli_seeded_storage_fault_exits_typed_and_resumes_byte_identically() {
    let dir = tmpdir("cli-storage");
    let full = mtshare(&dir, &[&["simulate", "--trace-out", "full.jsonl"], SMALL_CITY].concat());
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));

    let faulted = mtshare(
        &dir,
        &[
            &[
                "simulate",
                "--trace-out",
                "head.jsonl",
                "--state-dir",
                "state",
                "--checkpoint-every",
                "5",
                "--failpoints",
                "wal-sync-fail=1",
            ],
            SMALL_CITY,
        ]
        .concat(),
    );
    let stderr = String::from_utf8_lossy(&faulted.stderr);
    assert_eq!(
        faulted.status.code(),
        Some(STORAGE_FAULT_EXIT),
        "strict durability must exit {STORAGE_FAULT_EXIT}: {stderr}"
    );
    assert!(stderr.contains("storage fault"), "{stderr}");

    let resumed = mtshare(
        &dir,
        &[
            &[
                "simulate",
                "--trace-out",
                "tail.jsonl",
                "--state-dir",
                "state",
                "--checkpoint-every",
                "5",
                "--resume",
            ],
            SMALL_CITY,
        ]
        .concat(),
    );
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));

    let full_trace = std::fs::read(dir.join("full.jsonl")).unwrap();
    let mut joined = std::fs::read(dir.join("head.jsonl")).unwrap();
    joined.extend(std::fs::read(dir.join("tail.jsonl")).unwrap());
    assert_eq!(
        joined, full_trace,
        "checkpoint-boundary fault + resume must reproduce the uninterrupted trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_oversized_feed_line_exits_with_the_feed_fault_code() {
    let dir = tmpdir("cli-oversized");
    std::fs::write(dir.join("feed.jsonl"), "x".repeat(70 * 1024)).unwrap();
    let out = mtshare(&dir, &[&["serve", "--feed", "feed.jsonl"], SMALL_CITY].concat());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(FEED_FAULT_EXIT), "{stderr}");
    assert!(stderr.contains("oversized_line"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_tcp_disconnect_mid_line_exits_with_the_feed_fault_code() {
    use std::io::Write;
    let dir = tmpdir("cli-tcp");
    let port = 41000 + (std::process::id() % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_mtshare"))
        .current_dir(&dir)
        .args([&["serve", "--feed", &format!("tcp:{addr}")], SMALL_CITY].concat())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn mtshare serve");

    // The listener comes up after scenario construction; retry connect.
    let mut stream = None;
    for _ in 0..200 {
        match std::net::TcpStream::connect(&addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    let mut stream = stream.expect("serve never opened its feed socket");
    // One complete entry, then half a line, then a hard disconnect.
    stream.write_all(b"{\"t\":1,\"origin\":0,\"dest\":5,\"deadline\":600}\n").unwrap();
    stream.write_all(b"{\"t\":2,\"origin\":1,\"de").unwrap();
    drop(stream);

    let out = child.wait_with_output().expect("wait for serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(FEED_FAULT_EXIT),
        "mid-line disconnect must exit {FEED_FAULT_EXIT}: {stderr}"
    );
    assert!(stderr.contains("feed fault"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
