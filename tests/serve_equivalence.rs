//! Service-mode contract tests.
//!
//! The core invariant: a recorded feed replayed through `mtshare serve`
//! produces an event trace byte-identical to the one-shot run of the
//! same scenario — at any `--parallelism`, under either pacing mode,
//! and across a kill-and-resume. Admission-queue edge cases (zero
//! capacity, shed-under-burst, drain with an open batch window,
//! drain-while-resuming) and the fail-fast CLI flag validation ride
//! along.

use mt_share::chaos::CrashPoint;
use mt_share::core::PartitionStrategy;
use mt_share::model::DispatchScheme;
use mt_share::obs::{Obs, RejectReason};
use mt_share::road::{grid_city, GridCityConfig, RoadNetwork};
use mt_share::routing::PathCache;
use mt_share::serve::{
    record_feed, serve, AdmissionPolicy, AdmissionQueue, FeedReader, Pace, ServeOptions,
    ServeOutcome,
};
use mt_share::sim::{
    build_context, BatchConfig, PersistConfig, Scenario, ScenarioConfig, SchemeKind, SimConfig,
    SimEngine, SimReport, Simulator, StepOutcome,
};
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

// ---------------------------------------------------------------- CLI --

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mtshare(dir: &Path, argv: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mtshare"))
        .current_dir(dir)
        .args(argv)
        .output()
        .expect("spawn mtshare")
}

const SCENARIO: &[&str] =
    &["--scheme", "mt-share", "--taxis", "15", "--requests", "150", "--nonpeak"];

#[test]
fn recorded_feed_replays_byte_identically_through_serve() {
    let dir = tmpdir("replay");
    let rec = mtshare(
        &dir,
        &[
            &["simulate"],
            SCENARIO,
            &["--trace-out", "oneshot.jsonl", "--feed-record", "feed.jsonl"],
        ]
        .concat(),
    );
    assert!(rec.status.success(), "record: {}", String::from_utf8_lossy(&rec.stderr));
    let oneshot = std::fs::read(dir.join("oneshot.jsonl")).unwrap();
    assert!(!oneshot.is_empty());

    for par in ["1", "4"] {
        for pace in ["free", "45"] {
            let out = format!("serve-{par}-{pace}.jsonl");
            let run = mtshare(
                &dir,
                &[
                    &["serve"],
                    SCENARIO,
                    &[
                        "--feed",
                        "feed.jsonl",
                        "--pace",
                        pace,
                        "--parallelism",
                        par,
                        "--trace-out",
                        &out,
                    ],
                ]
                .concat(),
            );
            assert!(
                run.status.success(),
                "serve par={par} pace={pace}: {}",
                String::from_utf8_lossy(&run.stderr)
            );
            let trace = std::fs::read(dir.join(&out)).unwrap();
            assert_eq!(trace, oneshot, "serve trace diverged (par={par}, pace={pace})");
        }
    }
}

#[test]
fn serve_kill_and_resume_joins_byte_identically() {
    let dir = tmpdir("resume");
    let rec = mtshare(
        &dir,
        &[
            &["simulate"],
            SCENARIO,
            &["--trace-out", "oneshot.jsonl", "--feed-record", "feed.jsonl"],
        ]
        .concat(),
    );
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));

    let common: Vec<&str> = [
        &["serve"],
        SCENARIO,
        &["--feed", "feed.jsonl", "--pace", "45", "--parallelism", "4", "--state-dir", "state"],
    ]
    .concat();
    let crash = mtshare(
        &dir,
        &[
            &common[..],
            &["--trace-out", "head.jsonl", "--checkpoint-every", "25", "--crash-at", "150"],
        ]
        .concat(),
    );
    assert_eq!(
        crash.status.code(),
        Some(42),
        "planned crash exit: {}",
        String::from_utf8_lossy(&crash.stderr)
    );
    let resume = mtshare(&dir, &[&common[..], &["--trace-out", "tail.jsonl", "--resume"]].concat());
    assert!(resume.status.success(), "resume: {}", String::from_utf8_lossy(&resume.stderr));

    let mut joined = std::fs::read(dir.join("head.jsonl")).unwrap();
    joined.extend(std::fs::read(dir.join("tail.jsonl")).unwrap());
    let oneshot = std::fs::read(dir.join("oneshot.jsonl")).unwrap();
    assert_eq!(joined, oneshot, "killed+resumed serve trace diverged from one-shot");
}

#[test]
fn bad_flag_combinations_fail_fast_with_exit_2() {
    let dir = tmpdir("flags");
    let cases: &[(&[&str], &str)] = &[
        (&["serve", "--resume"], "--resume requires --state-dir"),
        (&["simulate", "--crash-at", "10"], "--crash-at requires --state-dir"),
        (&["simulate", "--batch-retries", "2"], "--batch-retries requires --scheme batch"),
        (&["serve", "--batch-window", "30"], "--batch-window requires --scheme batch"),
        (&["simulate", "--ch-artifact", "ch.bin"], "--ch-artifact requires --router ch"),
        (&["simulate", "--disruptions", "cancels=2"], "--disruptions requires --chaos-seed"),
        (&["serve", "--report-every", "30"], "--report-every requires --report-out"),
        (&["serve", "--admission", "block", "--queue-capacity", "0"], "can never admit"),
        (&["serve", "--admission", "sometimes"], "unknown admission policy"),
        (&["serve", "--pace", "-3"], "--pace must be"),
        (&["serve", "--disruptions", "cancels=2"], "unknown flag --disruptions"),
        (&["simulate", "--totally-bogus"], "unknown flag --totally-bogus"),
        (&["simulate", "--failpoints", "wal-sync-fail=1"], "--failpoints requires --chaos-seed"),
        (&["serve", "--durability", "degrade"], "--durability requires --state-dir"),
        (&["serve", "--supervise"], "--supervise requires --state-dir"),
        (&["serve", "--supervise-backoff-ms", "10"], "--supervise-backoff-ms requires --supervise"),
    ];
    for (argv, needle) in cases {
        let out = mtshare(&dir, argv);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "`{argv:?}` should exit 2: {stderr}");
        assert!(stderr.contains(needle), "`{argv:?}` stderr missing `{needle}`: {stderr}");
    }
}

// --------------------------------------------------------- in-process --

struct World {
    graph: Arc<RoadNetwork>,
    scenario: Scenario,
}

fn world() -> World {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(8));
    World { graph, scenario }
}

struct ServeRun {
    outcome: ServeOutcome,
    obs: Obs,
}

/// Builds a streaming engine over `w`'s fleet with an emptied request
/// store, exactly as `mtshare serve` does.
fn build_engine(
    w: &World,
    batch: Option<BatchConfig>,
    persist: Option<PersistConfig>,
) -> (SimEngine, Box<dyn DispatchScheme>, Obs) {
    let empty = Scenario {
        config: w.scenario.config.clone(),
        historical: w.scenario.historical.clone(),
        requests: Vec::new(),
        taxis: w.scenario.taxis.clone(),
    };
    let kind = if batch.is_some() { SchemeKind::MtShareBatch } else { SchemeKind::MtShare };
    let ctx = build_context(&w.graph, &w.scenario.historical, 12, PartitionStrategy::Bipartite);
    let mut scheme = kind.build(&w.graph, w.scenario.taxis.len(), Some(ctx), None);
    let obs = Obs::enabled();
    let cfg = SimConfig { batch, persist, ..SimConfig::default() };
    let sim = Simulator::new(w.graph.clone(), PathCache::new(w.graph.clone()), &empty, cfg)
        .with_obs(obs.clone())
        .with_streaming();
    let engine = SimEngine::new(sim, scheme.as_mut());
    (engine, scheme, obs)
}

fn run_serve(
    w: &World,
    feed_text: &str,
    queue: AdmissionQueue,
    pace: Pace,
    batch: Option<BatchConfig>,
    persist: Option<PersistConfig>,
) -> ServeRun {
    let (engine, mut scheme, obs) = build_engine(w, batch, persist);
    let opts = ServeOptions {
        queue,
        pace,
        report_every_s: None,
        n_nodes: w.graph.node_count() as u32,
        heartbeat: None,
        feed_faults: None,
    };
    let outcome =
        serve(engine, scheme.as_mut(), Cursor::new(feed_text.to_string()), opts, &obs, None)
            .expect("serve run");
    ServeRun { outcome, obs }
}

fn finished(run: &ServeRun) -> &SimReport {
    match &run.outcome {
        ServeOutcome::Finished(r) => r,
        ServeOutcome::Crashed { step } => panic!("unexpected crash at step {step}"),
        ServeOutcome::StorageFault { step } => panic!("unexpected storage fault at step {step}"),
    }
}

const LOSSLESS: AdmissionQueue = AdmissionQueue { capacity: 1024, policy: AdmissionPolicy::Block };

#[test]
fn shed_under_burst_is_deterministic() {
    let w = world();
    let feed = record_feed(&w.scenario.requests);
    let queue = AdmissionQueue { capacity: 4, policy: AdmissionPolicy::ShedOldest };
    let pace = Pace::Virtual { quantum_s: 120.0 };
    let a = run_serve(&w, &feed, queue, pace, None, None);
    let b = run_serve(&w, &feed, queue, pace, None, None);
    let shed = a.obs.reject_count(RejectReason::QueueShed);
    assert!(shed > 0, "bursts of 120 s against capacity 4 must shed something");
    assert_eq!(shed, b.obs.reject_count(RejectReason::QueueShed));
    assert_eq!(a.obs.event_counts(), b.obs.event_counts());
    let (ra, rb) = (finished(&a), finished(&b));
    assert_eq!(ra.served, rb.served);
    assert_eq!(ra.rejected, rb.rejected);
    assert_eq!(ra.total_passenger_fares, rb.total_passenger_fares);
}

#[test]
fn zero_capacity_queue_rejects_every_request() {
    let w = world();
    let feed = record_feed(&w.scenario.requests);
    let queue = AdmissionQueue { capacity: 0, policy: AdmissionPolicy::RejectNew };
    let run = run_serve(&w, &feed, queue, Pace::Free, None, None);
    let n = w.scenario.requests.len();
    assert_eq!(run.obs.reject_count(RejectReason::QueueRejected), n as u64);
    let report = finished(&run);
    assert_eq!(report.served, 0);
    assert_eq!(report.rejected, n);
}

#[test]
fn drain_command_with_an_open_batch_window() {
    let w = world();
    // Split the feed mid-stream: the drain command lands while the
    // rolling batch window still holds undecided members; the post-
    // drain entries must surface as deterministic `drain_rejected`.
    let mid = w.scenario.requests.len() / 2;
    let mut feed = record_feed(&w.scenario.requests[..mid]);
    feed.push_str("{\"cmd\":\"drain\"}\n");
    feed.push_str(&record_feed(&w.scenario.requests[mid..]));
    let batch = Some(BatchConfig::default());
    let run = run_serve(&w, &feed, LOSSLESS, Pace::Free, batch, None);
    let report = finished(&run);
    let n = w.scenario.requests.len();
    assert_eq!(report.n_requests, n, "post-drain entries still enter the trace");
    assert_eq!(
        run.obs.reject_count(RejectReason::DrainRejected),
        (n - mid) as u64,
        "everything after the drain command is drain-rejected"
    );
    assert!(report.served > 0, "the open window must still flush and serve");
    assert_eq!(report.served + report.rejected, n, "no request may leak from the window");
}

#[test]
fn drain_while_resuming_completes_and_matches() {
    let w = world();
    let feed = record_feed(&w.scenario.requests);
    let pace = Pace::Virtual { quantum_s: 60.0 };

    // Baseline probe: drive the loop by hand to learn where the drain
    // phase sits in the step sequence (serve() hides the counter).
    let (mut engine, mut scheme, base_obs) = build_engine(&w, None, None);
    let mut reader =
        FeedReader::new(Cursor::new(feed.clone()), pace, w.graph.node_count() as u32, 0);
    while let Some(burst) = reader.next_burst().unwrap() {
        for entry in burst {
            engine.ingest(entry);
        }
        assert!(matches!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Idle));
    }
    engine.close_stream();
    let close_step = engine.step_count();
    assert!(matches!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Done));
    let done_step = engine.step_count();
    assert!(done_step > close_step, "this workload must leave in-flight work to drain");
    let full = engine.finalize(scheme.as_mut()).expect("no persistence, no storage faults");

    let dir = tmpdir("drain-resume");
    let state = dir.join("state");
    let mut persist = PersistConfig::new(state.to_str().unwrap());
    persist.checkpoint_every = 25;
    // Aim the crash squarely inside the post-close drain phase.
    persist.crash_at = Some(CrashPoint::return_at(close_step + (done_step - close_step) / 2));
    let crashed = run_serve(&w, &feed, LOSSLESS, pace, None, Some(persist));
    let step = match crashed.outcome {
        ServeOutcome::Crashed { step } => step,
        _ => panic!("crash point never fired"),
    };
    assert!(step >= close_step, "crash fell before the drain phase");

    let mut resume = PersistConfig::new(state.to_str().unwrap());
    resume.resume = true;
    let resumed = run_serve(&w, &feed, LOSSLESS, pace, None, Some(resume));
    let report = finished(&resumed);
    assert_eq!(report.served, full.served);
    assert_eq!(report.rejected, full.rejected);
    assert_eq!(report.total_passenger_fares, full.total_passenger_fares);
    assert_eq!(resumed.obs.event_counts(), base_obs.event_counts());
}
