//! Speculative parallel batch dispatch must be *observationally
//! equivalent* to the sequential reference path: same assignments, same
//! schedules, same metrics — for any worker count. These tests run the
//! same scenarios at parallelism 1 (the sequential path, batching
//! disabled), 2, and 8 and require the deterministic portion of the
//! reports to match exactly, down to the per-request audit trail of
//! (request, taxi, pickup time, dropoff time).
//!
//! Deliberately excluded from the comparison: wall-clock and response-time
//! stats (timing is inherently nondeterministic) and cache/index memory
//! (the speculative path warms shards in a different pattern). Everything
//! the paper's evaluation reports as *outcomes* must be bit-identical.

use mt_share::core::{MtShareConfig, PartitionStrategy};
use mt_share::obs::{json, MemorySink, Obs};
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, BatchConfig, Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport,
    Simulator,
};
use std::sync::Arc;

fn run_at(kind: SchemeKind, scenario_cfg: &ScenarioConfig, parallelism: usize) -> SimReport {
    run_with_obs(kind, scenario_cfg, parallelism, Obs::disabled()).0
}

fn run_with_obs(
    kind: SchemeKind,
    scenario_cfg: &ScenarioConfig,
    parallelism: usize,
    obs: Obs,
) -> (SimReport, Obs) {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, scenario_cfg.clone());
    let ctx = kind
        .needs_context()
        .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
    let mt_cfg = MtShareConfig::default().with_parallelism(parallelism);
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, Some(mt_cfg));
    let batch = (kind == SchemeKind::MtShareBatch).then(BatchConfig::default);
    let sim_cfg = SimConfig { parallelism, batch, ..SimConfig::default() };
    let report =
        Simulator::new(graph, cache, &scenario, sim_cfg).with_obs(obs.clone()).run(scheme.as_mut());
    (report, obs)
}

/// Runs with full telemetry and returns `(event trace bytes, summary with
/// the wall-clock/schedule-dependent "profiling" subtree stripped)`.
fn telemetry_at(kind: SchemeKind, cfg: &ScenarioConfig, parallelism: usize) -> (String, String) {
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let (_, obs) = run_with_obs(kind, cfg, parallelism, obs);
    let trace = buf.lock().unwrap().clone();
    let summary = obs.summary_json().expect("telemetry enabled");
    let mut v = json::parse(&summary).expect("summary parses");
    v.strip_key("profiling");
    (trace, v.to_json())
}

/// Asserts the deterministic portion of two reports is identical. All
/// comparisons are exact (`==` on f64): the claim is bit-equality, not
/// approximate agreement.
fn assert_equivalent(seq: &SimReport, par: &SimReport, label: &str) {
    assert_eq!(seq.served, par.served, "{label}: served");
    assert_eq!(seq.served_online, par.served_online, "{label}: served_online");
    assert_eq!(seq.served_offline, par.served_offline, "{label}: served_offline");
    assert_eq!(seq.rejected, par.rejected, "{label}: rejected");
    assert_eq!(seq.avg_detour_min, par.avg_detour_min, "{label}: avg_detour_min");
    assert_eq!(seq.avg_waiting_min, par.avg_waiting_min, "{label}: avg_waiting_min");
    assert_eq!(seq.avg_candidates, par.avg_candidates, "{label}: avg_candidates");
    assert_eq!(
        seq.total_passenger_fares, par.total_passenger_fares,
        "{label}: total_passenger_fares"
    );
    assert_eq!(seq.total_solo_fares, par.total_solo_fares, "{label}: total_solo_fares");
    assert_eq!(seq.total_driver_income, par.total_driver_income, "{label}: total_driver_income");
    assert_eq!(seq.total_benefit, par.total_benefit, "{label}: total_benefit");
    // The audit trail pins down *which* taxi served *which* request and
    // exactly when — the byte-identical assignment sequence.
    assert_eq!(
        seq.served_records.len(),
        par.served_records.len(),
        "{label}: served_records length"
    );
    for (s, p) in seq.served_records.iter().zip(&par.served_records) {
        assert_eq!(s.request, p.request, "{label}: record request id");
        assert_eq!(s.taxi, p.taxi, "{label}: taxi for request {}", s.request);
        assert_eq!(s.pickup_t, p.pickup_t, "{label}: pickup_t for request {}", s.request);
        assert_eq!(s.dropoff_t, p.dropoff_t, "{label}: dropoff_t for request {}", s.request);
    }
}

#[test]
fn mtshare_peak_is_thread_count_invariant() {
    let cfg = ScenarioConfig::peak(12);
    let seq = run_at(SchemeKind::MtShare, &cfg, 1);
    assert!(seq.served > 0, "scenario must exercise the dispatcher: {seq:?}");
    for threads in [2, 8] {
        let par = run_at(SchemeKind::MtShare, &cfg, threads);
        assert_equivalent(&seq, &par, &format!("mT-Share peak @{threads}"));
    }
}

#[test]
fn mtshare_nonpeak_with_offline_requests_is_thread_count_invariant() {
    // Non-peak mixes offline (encounter-driven, always sequential)
    // arrivals between the batched online runs — the batch boundary and
    // abort logic both get exercised.
    let cfg = ScenarioConfig::nonpeak(16);
    let seq = run_at(SchemeKind::MtShare, &cfg, 1);
    assert!(seq.n_offline > 0, "scenario must contain offline requests");
    for threads in [2, 8] {
        let par = run_at(SchemeKind::MtShare, &cfg, threads);
        assert_equivalent(&seq, &par, &format!("mT-Share nonpeak @{threads}"));
    }
}

#[test]
fn mtshare_pro_probabilistic_routing_is_thread_count_invariant() {
    // Probabilistic routing takes the weighted-search leg path — it must
    // be just as deterministic under speculation.
    let cfg = ScenarioConfig::nonpeak(16);
    let seq = run_at(SchemeKind::MtSharePro, &cfg, 1);
    assert!(seq.served > 0, "{seq:?}");
    for threads in [2, 8] {
        let par = run_at(SchemeKind::MtSharePro, &cfg, threads);
        assert_equivalent(&seq, &par, &format!("mT-Share_pro nonpeak @{threads}"));
    }
}

#[test]
fn schemes_without_a_speculative_path_fall_back_cleanly() {
    // Baselines don't implement dispatch_batch_speculative; a parallel
    // SimConfig must degrade to sequential dispatch with unchanged
    // results, not crash or double-count.
    let cfg = ScenarioConfig::peak(10);
    let seq = run_at(SchemeKind::TShare, &cfg, 1);
    let par = run_at(SchemeKind::TShare, &cfg, 8);
    assert_equivalent(&seq, &par, "T-Share fallback @8");
}

#[test]
fn telemetry_streams_are_byte_identical_across_parallelism() {
    // The observability contract (DESIGN.md, "Observability"): with
    // telemetry enabled, the JSONL event stream and the summary minus
    // its "profiling" subtree are byte-identical at any worker count.
    let cfg = ScenarioConfig::peak(12);
    let (trace1, summary1) = telemetry_at(SchemeKind::MtShare, &cfg, 1);
    assert!(!trace1.is_empty(), "scenario must emit events");
    mt_share::obs::schema::validate_trace(&trace1).expect("trace schema");
    for threads in [2, 8] {
        let (trace_n, summary_n) = telemetry_at(SchemeKind::MtShare, &cfg, threads);
        assert_eq!(trace1, trace_n, "event stream differs @{threads}");
        assert_eq!(summary1, summary_n, "stripped summary differs @{threads}");
    }
}

#[test]
fn telemetry_with_offline_requests_is_byte_identical() {
    // Offline encounters, expiry rejects and the batch-abandon path all
    // emit events; the nonpeak mix must stay deterministic too.
    let cfg = ScenarioConfig::nonpeak(16);
    let (trace1, summary1) = telemetry_at(SchemeKind::MtSharePro, &cfg, 1);
    assert!(trace1.contains("\"ev\":\"encounter\""), "scenario must exercise encounters");
    for threads in [2, 8] {
        let (trace_n, summary_n) = telemetry_at(SchemeKind::MtSharePro, &cfg, threads);
        assert_eq!(trace1, trace_n, "event stream differs @{threads}");
        assert_eq!(summary1, summary_n, "stripped summary differs @{threads}");
    }
}

#[test]
fn telemetry_does_not_change_outcomes() {
    // Observing the run must not perturb it: reports with and without
    // the bus attached are equivalent.
    let cfg = ScenarioConfig::peak(12);
    let plain = run_at(SchemeKind::MtShare, &cfg, 8);
    let obs = Obs::enabled();
    let (observed, _) = run_with_obs(SchemeKind::MtShare, &cfg, 8, obs);
    assert_equivalent(&plain, &observed, "observed vs unobserved @8");
}

#[test]
fn batch_scheme_is_thread_count_invariant() {
    // Rolling-horizon batch dispatch scores window rows speculatively but
    // the LAP solve and commit order are a pure function of the window
    // contents — outcomes must not depend on the worker count.
    let cfg = ScenarioConfig::peak(12);
    let seq = run_at(SchemeKind::MtShareBatch, &cfg, 1);
    assert!(seq.served > 0, "scenario must exercise the batch dispatcher: {seq:?}");
    for threads in [2, 4, 8] {
        let par = run_at(SchemeKind::MtShareBatch, &cfg, threads);
        assert_equivalent(&seq, &par, &format!("mT-Share_batch peak @{threads}"));
    }
}

#[test]
fn batch_scheme_nonpeak_with_offline_requests_is_thread_count_invariant() {
    // Offline encounters stay on the sequential greedy path even in batch
    // mode; the interleaving of encounter commits and window flushes must
    // still be thread-count invariant.
    let cfg = ScenarioConfig::nonpeak(16);
    let seq = run_at(SchemeKind::MtShareBatch, &cfg, 1);
    assert!(seq.n_offline > 0, "scenario must contain offline requests");
    for threads in [2, 4] {
        let par = run_at(SchemeKind::MtShareBatch, &cfg, threads);
        assert_equivalent(&seq, &par, &format!("mT-Share_batch nonpeak @{threads}"));
    }
}

#[test]
fn batch_telemetry_is_byte_identical_and_schema_valid() {
    // The batch scheme's event stream (window-flush dispatches, LAP spans)
    // and its summary minus "profiling" must be byte-identical at any
    // worker count, and the unstripped summary must satisfy the v5 schema
    // (profiling.lap block, batch_solve stage histogram).
    let cfg = ScenarioConfig::peak(12);
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let (_, obs) = run_with_obs(SchemeKind::MtShareBatch, &cfg, 1, obs);
    let trace1 = buf.lock().unwrap().clone();
    assert!(!trace1.is_empty(), "scenario must emit events");
    mt_share::obs::schema::validate_trace(&trace1).expect("trace schema");
    let full_summary = obs.summary_json().expect("telemetry enabled");
    mt_share::obs::schema::validate_summary(&full_summary).expect("summary schema v5");
    assert!(obs.lap_solves() > 0, "batch runs must record LAP solves");
    let mut v = json::parse(&full_summary).expect("summary parses");
    v.strip_key("profiling");
    let summary1 = v.to_json();
    for threads in [2, 8] {
        let (trace_n, summary_n) = telemetry_at(SchemeKind::MtShareBatch, &cfg, threads);
        assert_eq!(trace1, trace_n, "batch event stream differs @{threads}");
        assert_eq!(summary1, summary_n, "batch stripped summary differs @{threads}");
    }
}

#[test]
fn batch_run_repeats_identically() {
    // Same seed, same thread count, run twice: the batch path must be
    // reproducible run-to-run, not just across worker counts.
    let cfg = ScenarioConfig::peak(12);
    let a = run_at(SchemeKind::MtShareBatch, &cfg, 4);
    let b = run_at(SchemeKind::MtShareBatch, &cfg, 4);
    assert_equivalent(&a, &b, "mT-Share_batch peak @4 repeat");
}

#[test]
fn parallel_run_repeats_identically() {
    // Same thread count twice: guards against racy nondeterminism that a
    // single seq-vs-par comparison could miss by luck.
    let cfg = ScenarioConfig::peak(12);
    let a = run_at(SchemeKind::MtShare, &cfg, 8);
    let b = run_at(SchemeKind::MtShare, &cfg, 8);
    assert_equivalent(&a, &b, "mT-Share peak @8 repeat");
}
