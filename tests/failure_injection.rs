//! Failure injection: unreachable OD pairs, infeasible deadlines, empty
//! fleets, zero-capacity taxis, and degenerate graphs must degrade
//! gracefully — rejections, never panics or constraint violations.

use mt_share::baselines::{NoSharing, PGreedyDp, TShare};
use mt_share::chaos::{Disruption, DisruptionPlan, TimedDisruption};
use mt_share::core::{MobilityContext, MtShare, MtShareConfig, PartitionStrategy};
use mt_share::model::{DispatchScheme, RequestId, RequestStore, RideRequest, Taxi, TaxiId, World};
use mt_share::obs::{schema, MemorySink, Obs, RejectReason};
use mt_share::road::{grid_city, EdgeSpec, GeoPoint, GridCityConfig, NodeId, RoadNetwork};
use mt_share::routing::{HotNodeOracle, PathCache};
use mt_share::sim::{Scenario, ScenarioConfig, SimConfig, Simulator};
use std::sync::Arc;

fn one_way_pair() -> Arc<RoadNetwork> {
    // 0 -> 1 reachable, 1 -> 0 not.
    let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
    let edges = vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 100.0, speed_kmh: 15.0 }];
    Arc::new(RoadNetwork::new(pts, &edges).unwrap())
}

fn request(id: u32, origin: u32, dest: u32, direct: f64, deadline: f64) -> RideRequest {
    RideRequest {
        id: RequestId(id),
        release_time: 0.0,
        origin: NodeId(origin),
        destination: NodeId(dest),
        passengers: 1,
        deadline,
        direct_cost_s: direct,
        offline: false,
    }
}

#[test]
fn unreachable_destination_is_rejected_not_panicked() {
    let graph = one_way_pair();
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(1))];
    let mut requests = RequestStore::new();
    // 1 -> 0 is unreachable.
    let req = request(0, 1, 0, f64::INFINITY, 1e12);
    requests.push(req.clone());
    let world =
        World { graph: &graph, cache: &cache, oracle: &oracle, taxis: &taxis, requests: &requests };

    let ctx = MobilityContext::build(&graph, &[], 1, 1, 0, PartitionStrategy::Grid);
    let mut schemes: Vec<Box<dyn DispatchScheme>> = vec![
        Box::new(NoSharing::new(&graph, 1)),
        Box::new(TShare::new(&graph, 1)),
        Box::new(PGreedyDp::new(&graph, 1)),
        Box::new(MtShare::new(&graph, ctx, MtShareConfig::default(), 1)),
    ];
    for s in &mut schemes {
        s.install(&world);
        let out = s.dispatch(&req, 0.0, &world);
        assert!(out.assignment.is_none(), "{} must reject unreachable trips", s.name());
    }
}

#[test]
fn empty_fleet_rejects_everything() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    let taxis: Vec<Taxi> = Vec::new();
    let mut requests = RequestStore::new();
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 10.0);
    requests.push(req.clone());
    let world =
        World { graph: &graph, cache: &cache, oracle: &oracle, taxis: &taxis, requests: &requests };

    let ctx = MobilityContext::build(&graph, &[], 4, 2, 0, PartitionStrategy::Grid);
    let mut schemes: Vec<Box<dyn DispatchScheme>> = vec![
        Box::new(NoSharing::new(&graph, 0)),
        Box::new(TShare::new(&graph, 0)),
        Box::new(PGreedyDp::new(&graph, 0)),
        Box::new(MtShare::new(&graph, ctx, MtShareConfig::default(), 0)),
    ];
    for s in &mut schemes {
        s.install(&world);
        let out = s.dispatch(&req, 0.0, &world);
        assert!(out.assignment.is_none());
        assert_eq!(out.candidates_examined, 0, "{}", s.name());
    }
}

#[test]
fn zero_deadline_slack_is_infeasible_from_afar() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    // Taxi at the far corner; the deadline leaves zero pickup budget.
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(399))];
    let mut requests = RequestStore::new();
    let direct = cache.cost(NodeId(0), NodeId(20)).unwrap();
    let req = request(0, 0, 20, direct, direct); // deadline == release + direct
    requests.push(req.clone());
    let world =
        World { graph: &graph, cache: &cache, oracle: &oracle, taxis: &taxis, requests: &requests };
    let ctx = MobilityContext::build(&graph, &[], 4, 2, 0, PartitionStrategy::Grid);
    let mut mt = MtShare::new(&graph, ctx, MtShareConfig::default(), 1);
    mt.install(&world);
    assert!(mt.dispatch(&req, 0.0, &world).assignment.is_none());
}

#[test]
fn zero_capacity_taxi_never_assigned() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 0, NodeId(1))];
    let mut requests = RequestStore::new();
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 3.0);
    requests.push(req.clone());
    let world =
        World { graph: &graph, cache: &cache, oracle: &oracle, taxis: &taxis, requests: &requests };
    let ctx = MobilityContext::build(&graph, &[], 4, 2, 0, PartitionStrategy::Grid);
    let mut schemes: Vec<Box<dyn DispatchScheme>> = vec![
        Box::new(TShare::new(&graph, 1)),
        Box::new(PGreedyDp::new(&graph, 1)),
        Box::new(MtShare::new(&graph, ctx, MtShareConfig::default(), 1)),
    ];
    for s in &mut schemes {
        s.install(&world);
        assert!(s.dispatch(&req, 0.0, &world).assignment.is_none(), "{}", s.name());
    }
}

/// Runs one request through a full simulation with telemetry attached
/// and returns the bus plus the JSONL trace. The request must end up
/// rejected — the tests below assert on the *reason* counter.
fn run_single_rejection(
    graph: &Arc<RoadNetwork>,
    cache: &PathCache,
    taxis: Vec<Taxi>,
    req: RideRequest,
) -> (Obs, String) {
    let n_taxis = taxis.len();
    let scenario = Scenario {
        config: ScenarioConfig::peak(n_taxis.max(1)),
        historical: Vec::new(),
        requests: vec![req],
        taxis,
    };
    let ctx = MobilityContext::build(graph, &[], 1, 1, 0, PartitionStrategy::Grid);
    let mut scheme = MtShare::new(graph, ctx, MtShareConfig::default(), n_taxis);
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let report = Simulator::new(graph.clone(), cache.clone(), &scenario, SimConfig::default())
        .with_obs(obs.clone())
        .run(&mut scheme);
    assert_eq!(report.served, 0);
    assert_eq!(report.rejected, 1);
    let trace = buf.lock().unwrap().clone();
    schema::validate_trace(&trace).expect("rejection trace must be schema-valid");
    (obs, trace)
}

/// Asserts exactly one rejection was recorded, under `reason`.
fn assert_sole_reason(obs: &Obs, trace: &str, reason: RejectReason) {
    for r in RejectReason::ALL {
        let want = u64::from(r == reason);
        assert_eq!(obs.reject_count(r), want, "count for {}", r.label());
    }
    assert!(
        trace.contains(&format!("\"reason\":\"{}\"", reason.label())),
        "trace must name the reason:\n{trace}"
    );
}

#[test]
fn unreachable_od_increments_its_reason_counter() {
    let graph = one_way_pair();
    let cache = PathCache::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(1))];
    let req = request(0, 1, 0, f64::INFINITY, 1e12); // 1 -> 0 unreachable
    let (obs, trace) = run_single_rejection(&graph, &cache, taxis, req);
    assert_sole_reason(&obs, &trace, RejectReason::UnreachableOd);
}

#[test]
fn infeasible_deadline_increments_its_reason_counter() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(399))];
    let direct = cache.cost(NodeId(0), NodeId(20)).unwrap();
    // Deadline below the direct drive: infeasible even from the origin.
    let req = request(0, 0, 20, direct, direct * 0.5);
    let (obs, trace) = run_single_rejection(&graph, &cache, taxis, req);
    assert_sole_reason(&obs, &trace, RejectReason::InfeasibleDeadline);
}

#[test]
fn zero_capacity_increments_its_reason_counter() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 0, NodeId(1))];
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 3.0);
    let (obs, trace) = run_single_rejection(&graph, &cache, taxis, req);
    assert_sole_reason(&obs, &trace, RejectReason::ZeroCapacity);
}

#[test]
fn empty_fleet_increments_its_reason_counter() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 10.0);
    let (obs, trace) = run_single_rejection(&graph, &cache, Vec::new(), req);
    assert_sole_reason(&obs, &trace, RejectReason::EmptyFleet);
}

#[test]
fn honest_rejection_classifies_as_no_feasible_insertion() {
    // Serviceable in principle (reachable, feasible deadline, enough
    // seats) but the lone taxi is too far to make the pickup: the
    // fallback reason must be no_feasible_insertion, not a structural one.
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(399))];
    let direct = cache.cost(NodeId(0), NodeId(20)).unwrap();
    let req = request(0, 0, 20, direct, direct + 1.0); // 1 s of slack
    let (obs, trace) = run_single_rejection(&graph, &cache, taxis, req);
    assert_sole_reason(&obs, &trace, RejectReason::NoFeasibleInsertion);
}

/// Like [`run_single_rejection`], but with a hand-built disruption plan
/// injected — the rejection is *caused* by the disruption, and its reason
/// counter must name the cause rather than a world-state guess.
fn run_single_chaos_rejection(
    graph: &Arc<RoadNetwork>,
    cache: &PathCache,
    taxis: Vec<Taxi>,
    req: RideRequest,
    plan: DisruptionPlan,
) -> (Obs, String) {
    let n_taxis = taxis.len();
    let scenario = Scenario {
        config: ScenarioConfig::peak(n_taxis.max(1)),
        historical: Vec::new(),
        requests: vec![req],
        taxis,
    };
    let ctx = MobilityContext::build(graph, &[], 1, 1, 0, PartitionStrategy::Grid);
    let mut scheme = MtShare::new(graph, ctx, MtShareConfig::default(), n_taxis);
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let report = Simulator::new(graph.clone(), cache.clone(), &scenario, SimConfig::default())
        .with_obs(obs.clone())
        .with_disruptions(plan)
        .run(&mut scheme);
    assert_eq!(report.served, 0);
    assert_eq!(report.rejected, 1);
    let trace = buf.lock().unwrap().clone();
    schema::validate_trace(&trace).expect("chaos rejection trace must be schema-valid");
    (obs, trace)
}

fn plan(at: f64, disruption: Disruption) -> DisruptionPlan {
    DisruptionPlan { events: vec![TimedDisruption { at, disruption }] }
}

#[test]
fn passenger_cancel_increments_its_reason_counter() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    // The taxi is ~10 hops from the origin, so the t = 2 s cancel lands
    // after the commit but before the pickup.
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(105))];
    let direct = cache.cost(NodeId(0), NodeId(15)).unwrap();
    let pickup_eta = cache.cost(NodeId(105), NodeId(0)).unwrap();
    let req = request(0, 0, 15, direct, pickup_eta + direct + 600.0);
    let cancel = plan(2.0, Disruption::Cancel { request: RequestId(0) });
    let (obs, trace) = run_single_chaos_rejection(&graph, &cache, taxis, req, cancel);
    assert_sole_reason(&obs, &trace, RejectReason::CancelledByPassenger);
}

#[test]
fn breakdown_without_survivors_increments_taxi_failed() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    // The lone taxi starts at the origin, picks the rider up immediately,
    // then breaks mid-trip with no fleet left to absorb the orphan.
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 3.0);
    let breakdown = plan(direct * 0.5, Disruption::Breakdown { taxi: TaxiId(0) });
    let (obs, trace) = run_single_chaos_rejection(&graph, &cache, taxis, req, breakdown);
    assert_sole_reason(&obs, &trace, RejectReason::TaxiFailed);
}

#[test]
fn exhausted_redispatch_budget_increments_retries_exhausted() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    // A zero-capacity survivor keeps the fleet alive, so the orphan is
    // re-offered on the retry schedule — and every attempt must fail until
    // the budget runs out.
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0)), Taxi::new(TaxiId(1), 0, NodeId(1))];
    let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
    let req = request(0, 0, 399, direct, direct * 3.0);
    let breakdown = plan(direct * 0.5, Disruption::Breakdown { taxi: TaxiId(0) });
    let (obs, trace) = run_single_chaos_rejection(&graph, &cache, taxis, req, breakdown);
    assert_sole_reason(&obs, &trace, RejectReason::RetriesExhausted);
    // All three budgeted attempts were made and none succeeded.
    let failed_attempts =
        trace.lines().filter(|l| l.contains("\"ev\":\"redispatch\"") && l.contains("\"ok\":false"));
    assert_eq!(failed_attempts.count(), 3, "{trace}");
}

#[test]
fn single_partition_context_still_dispatches() {
    // Degenerate κ = 1: everything in one partition; mT-Share must still
    // work (filter returns the single partition).
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(20))];
    let mut requests = RequestStore::new();
    let direct = cache.cost(NodeId(21), NodeId(200)).unwrap();
    oracle.pin(NodeId(21));
    oracle.pin(NodeId(200));
    let req = request(0, 21, 200, direct, direct * 2.0);
    requests.push(req.clone());
    let world =
        World { graph: &graph, cache: &cache, oracle: &oracle, taxis: &taxis, requests: &requests };
    let ctx = MobilityContext::build(&graph, &[], 1, 1, 0, PartitionStrategy::Grid);
    assert_eq!(ctx.kappa(), 1);
    let mut mt = MtShare::new(&graph, ctx, MtShareConfig::default(), 1);
    mt.install(&world);
    assert!(mt.dispatch(&req, 0.0, &world).assignment.is_some());
}
