//! The incremental dynamic-tree engine must be **bit-identical** to the
//! per-request insertion DP: same feasibility verdict, same winning
//! `(i, j)` positions, same `delta_s` down to the last mantissa bit —
//! for arbitrary fleets, committed plans, and splice histories. This is
//! what entitles `--scheduler dtree` to byte-identical traces.

use mt_share::dtree::{DTree, Stop};
use mt_share::model::{
    BestInsertion, DpEngine, DtreeEngine, EventKind, RequestId, RequestStore, RideRequest,
    ScheduleEngine, Taxi, TaxiId, World,
};
use mt_share::road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
use mt_share::routing::{HotNodeOracle, PathCache};
use proptest::prelude::*;
use std::sync::Arc;

struct Fixture {
    graph: Arc<RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    requests: RequestStore,
}

impl Fixture {
    fn new() -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        Self { graph, cache, oracle, requests: RequestStore::new() }
    }

    fn add_party(
        &mut self,
        origin: u32,
        dest: u32,
        rho: f64,
        release: f64,
        passengers: u8,
    ) -> RideRequest {
        let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
        let req = RideRequest {
            id: RequestId(self.requests.len() as u32),
            release_time: release,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers,
            deadline: release + direct * rho,
            direct_cost_s: direct,
            offline: false,
        };
        self.requests.push(req.clone());
        req
    }

    fn world<'a>(&'a self, taxis: &'a [Taxi]) -> World<'a> {
        World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis,
            requests: &self.requests,
        }
    }
}

/// Collapses an engine answer to a bit-comparable key.
fn key(b: Option<BestInsertion>) -> Option<(usize, usize, u64)> {
    b.map(|v| (v.i, v.j, v.delta_s.to_bits()))
}

/// The spine stop a schedule event maps to.
fn stop_of(ev: &mt_share::model::ScheduleEvent, requests: &RequestStore) -> Stop {
    Stop {
        node: ev.node.0,
        request: ev.request.0,
        pickup: ev.kind == EventKind::Pickup,
        riders: requests.get(ev.request).passengers as u32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fleet-level equivalence: for every taxi the dtree returns the
    /// same `Option<BestInsertion>` as the DP (positions AND cost, bit
    /// for bit), so the fleet-wide winning instance — taxi, schedule,
    /// detour — is identical under either scheduler.
    #[test]
    fn dtree_matches_dp_bit_for_bit(
        positions in proptest::collection::vec(0u32..400, 1..7),
        existing in proptest::collection::vec((0u32..400, 0u32..400, 1u8..3, 0usize..6), 0..12),
        probe in (0u32..400, 0u32..400, 1u8..3),
        rho_pct in 115u32..250,
        capacity in 2u8..5,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let mut taxis: Vec<Taxi> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Taxi::new(TaxiId(i as u32), capacity, NodeId(p)))
            .collect();

        // Commit up to 12 requests round-robin by the generated taxi
        // choice, each appended back-to-back (always precedence-valid).
        for &(o, d, seats, pick) in existing.iter() {
            if o == d || seats > capacity {
                continue;
            }
            let req = f.add_party(o, d, rho + 1.0, 0.0, seats);
            let taxi = &mut taxis[pick % positions.len()];
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.assigned.push(req.id);
            taxi.route_version += 1;
        }

        let (po, pd, seats) = probe;
        prop_assume!(po != pd);
        let req = f.add_party(po, pd, rho, 0.0, seats);

        let dp = DpEngine;
        let dtree = DtreeEngine::new(taxis.len());
        let world = f.world(&taxis);

        let mut winner_dp: Option<(u64, usize, usize, usize)> = None;
        let mut winner_dt: Option<(u64, usize, usize, usize)> = None;
        for (idx, taxi) in taxis.iter().enumerate() {
            let a = dp.best_insertion(taxi, &req, 0.0, &world, &mut |x, y| f.cache.cost(x, y));
            let b = dtree.best_insertion(taxi, &req, 0.0, &world, &mut |x, y| f.cache.cost(x, y));
            prop_assert_eq!(key(a), key(b), "engines disagree on taxi {}", idx);
            // Fleet winner under the pinned (detour, taxi) ordering.
            let consider = |slot: &mut Option<(u64, usize, usize, usize)>, v: BestInsertion| {
                let entry = (v.delta_s.to_bits(), idx, v.i, v.j);
                if slot.is_none_or(|w| {
                    let (wb, wi, _, _) = w;
                    f64::from_bits(entry.0).total_cmp(&f64::from_bits(wb))
                        .then(idx.cmp(&wi))
                        .is_lt()
                }) {
                    *slot = Some(entry);
                }
            };
            if let Some(v) = a { consider(&mut winner_dp, v); }
            if let Some(v) = b { consider(&mut winner_dt, v); }
        }
        prop_assert_eq!(winner_dp, winner_dt);

        // Same winner ⇒ same materialized schedule; it must be a valid
        // instance (precedence holds, probe pair present exactly once).
        if let Some((_, idx, i, j)) = winner_dp {
            let s = taxis[idx].schedule.with_insertion(&req, i, j);
            prop_assert!(s.precedence_ok());
            let stops: Vec<Stop> = s.events().iter().map(|ev| stop_of(ev, &f.requests)).collect();
            let pair: Vec<&Stop> = stops.iter().filter(|st| st.request == req.id.0).collect();
            prop_assert_eq!(pair.len(), 2);
            prop_assert!(pair[0].pickup && !pair[1].pickup);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert → commit → remove round-trips on the raw tree: committing
    /// a scored winner splices exactly the probe's stop pair in at the
    /// winning positions, removing it restores the original spine, and
    /// the post-round-trip tree scores bit-identically to a tree rebuilt
    /// from scratch (no stale memo or leg-cache state survives).
    #[test]
    fn commit_remove_round_trip(
        taxi_pos in 0u32..400,
        existing in proptest::collection::vec((0u32..400, 0u32..400, 1u8..3), 0..4),
        probe in (0u32..400, 0u32..400, 1u8..3),
        recheck in (0u32..400, 0u32..400),
        rho_pct in 115u32..250,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let capacity = 4u8;
        let mut taxi = Taxi::new(TaxiId(0), capacity, NodeId(taxi_pos));
        for &(o, d, seats) in existing.iter() {
            if o == d {
                continue;
            }
            let req = f.add_party(o, d, rho + 1.0, 0.0, seats);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.assigned.push(req.id);
        }
        let (po, pd, seats) = probe;
        prop_assume!(po != pd);
        let req = f.add_party(po, pd, rho, 0.0, seats);

        let spine: Vec<Stop> =
            taxi.schedule.events().iter().map(|ev| stop_of(ev, &f.requests)).collect();
        let mut tree = DTree::new();
        tree.rebuild(1, spine.iter().copied());

        let mk_probe = |taxi: &Taxi, req: &RideRequest, requests: &RequestStore| {
            mt_share::dtree::Probe {
                origin: req.origin.0,
                destination: req.destination.0,
                passengers: req.passengers as u32,
                deadline: req.deadline,
                pickup_deadline: req.pickup_deadline(),
                now: 0.0,
                pos: taxi.position_at(0.0).0,
                initial_load: taxi.onboard_load(requests),
                capacity: capacity as u32,
            }
        };
        let p = mk_probe(&taxi, &req, &f.requests);
        let won = tree.score(
            &p,
            &mut |r| f.requests.get(RequestId(r)).deadline,
            &mut |a, b| f.cache.cost(NodeId(a), NodeId(b)),
        );

        if let Some(ins) = won {
            // Commit: the spine must now equal the materialized schedule.
            let pickup = Stop { node: po, request: req.id.0, pickup: true, riders: seats as u32 };
            let dropoff = Stop { node: pd, request: req.id.0, pickup: false, riders: seats as u32 };
            tree.commit(2, ins, pickup, dropoff);
            let committed = taxi.schedule.with_insertion(&req, ins.i, ins.j);
            let expect: Vec<Stop> =
                committed.events().iter().map(|ev| stop_of(ev, &f.requests)).collect();
            prop_assert_eq!(tree.stops(), &expect[..]);

            // Remove: round-trips back to the original spine.
            tree.remove(3, req.id.0);
            prop_assert_eq!(tree.stops(), &spine[..]);

            // And the survivor scores exactly like a fresh rebuild.
            let (ro, rd) = recheck;
            prop_assume!(ro != rd);
            let req2 = f.add_party(ro, rd, rho, 0.0, 1);
            let p2 = mk_probe(&taxi, &req2, &f.requests);
            let incremental = tree.score(
                &p2,
                &mut |r| f.requests.get(RequestId(r)).deadline,
                &mut |a, b| f.cache.cost(NodeId(a), NodeId(b)),
            );
            let mut fresh = DTree::new();
            fresh.rebuild(3, spine.iter().copied());
            let scratch = fresh.score(
                &p2,
                &mut |r| f.requests.get(RequestId(r)).deadline,
                &mut |a, b| f.cache.cost(NodeId(a), NodeId(b)),
            );
            prop_assert_eq!(
                incremental.map(|v| (v.i, v.j, v.delta_s.to_bits())),
                scratch.map(|v| (v.i, v.j, v.delta_s.to_bits()))
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A mini dispatch loop over the engine hooks: commits (winning DP
    /// positions), cancels, completed-stop pops, and retimes — the exact
    /// splice stream `sync_tree` sees in the simulator. After every
    /// mutation both engines must agree bit for bit on a fresh probe,
    /// and the tree must absorb the whole history through splices
    /// (exactly one rebuild: the initial one).
    #[test]
    fn engine_agrees_through_splice_history(
        taxi_pos in 0u32..400,
        ops in proptest::collection::vec((0u8..4, 0u32..400, 0u32..400, 1u8..3), 1..12),
        rho_pct in 130u32..250,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(taxi_pos));
        let dp = DpEngine;
        let dtree = DtreeEngine::new(1);

        // Seed one committed request so every op kind has work to do.
        let seed = f.add_party(taxi_pos.wrapping_add(1) % 400, taxi_pos.wrapping_add(57) % 400, rho + 2.0, 0.0, 1);
        prop_assume!(seed.origin != seed.destination);
        taxi.schedule = taxi.schedule.with_insertion(&seed, 0, 1);
        taxi.assigned.push(seed.id);
        taxi.route_version = 1;
        {
            let taxis = std::slice::from_ref(&taxi);
            let world = f.world(taxis);
            dtree.after_assign(&taxi, &world);
        }

        for &(kind, o, d, seats) in ops.iter() {
            match kind {
                // Commit a new request at its DP-optimal positions.
                0 => {
                    if o == d {
                        continue;
                    }
                    let req = f.add_party(o, d, rho + 1.0, 0.0, seats);
                    let won = {
                        let taxis = std::slice::from_ref(&taxi);
                        let world = f.world(taxis);
                        dp.best_insertion(&taxi, &req, 0.0, &world, &mut |x, y| f.cache.cost(x, y))
                    };
                    if let Some(v) = won {
                        taxi.schedule = taxi.schedule.with_insertion(&req, v.i, v.j);
                        taxi.assigned.push(req.id);
                        taxi.route_version += 1;
                    }
                }
                // Cancel the oldest still-scheduled request.
                1 => {
                    let Some(victim) = taxi.schedule.events().first().map(|ev| ev.request) else {
                        continue;
                    };
                    taxi.schedule = taxi.schedule.without_request(victim);
                    taxi.assigned.retain(|&r| r != victim);
                    taxi.route_version += 1;
                }
                // Complete the front stop (no version bump — advance).
                2 => {
                    if taxi.schedule.len() == 0 {
                        continue;
                    }
                    taxi.schedule.pop_front();
                }
                // Retime: version bump, identical stop sequence.
                _ => {
                    taxi.route_version += 1;
                }
            }
            // Both engines must agree on a fresh probe of this state.
            let probe = (o != d).then(|| f.add_party(d, o, rho, 0.0, 1));
            let taxis = std::slice::from_ref(&taxi);
            let world = f.world(taxis);
            dtree.after_assign(&taxi, &world);
            if let Some(probe) = probe {
                let a = dp.best_insertion(&taxi, &probe, 0.0, &world, &mut |x, y| f.cache.cost(x, y));
                let b = dtree.best_insertion(&taxi, &probe, 0.0, &world, &mut |x, y| f.cache.cost(x, y));
                prop_assert_eq!(key(a), key(b), "post-op disagreement (op kind {})", kind);
            }
        }

        let stats = dtree.stats();
        prop_assert_eq!(stats.rebuilds, 1, "splice history forced a rebuild: {:?}", stats);
    }
}
