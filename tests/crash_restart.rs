//! Full-process crash/restart harness: runs the `mtshare` binary, kills
//! it with `--crash-at` (hard `exit(42)`, no clean shutdown), restarts
//! it with `--resume`, and requires the concatenation of the two trace
//! files to be byte-identical to an uninterrupted run — the same check
//! the CI crash-restart job performs, kept here so it runs under plain
//! `cargo test` too.

use std::path::{Path, PathBuf};
use std::process::Command;

fn mtshare(dir: &Path, scheme: &[&str], extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mtshare"))
        .current_dir(dir)
        .args(["simulate"])
        .args(scheme)
        .args([
            "--taxis",
            "15",
            "--requests",
            "150",
            "--nonpeak",
            "--chaos-seed",
            "7",
            "--validate-every",
            "120",
        ])
        .args(extra)
        .output()
        .expect("spawn mtshare")
}

fn crash_restart_roundtrip(name: &str, par_crash: &str, par_resume: &str) {
    crash_restart_scheme(name, &["--scheme", "mt-share"], par_crash, par_resume, "80");
}

fn crash_restart_scheme(
    name: &str,
    scheme: &[&str],
    par_crash: &str,
    par_resume: &str,
    crash_at: &str,
) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let full = mtshare(&dir, scheme, &["--parallelism", par_crash, "--trace-out", "full.jsonl"]);
    assert!(full.status.success(), "baseline: {}", String::from_utf8_lossy(&full.stderr));

    let crash = mtshare(
        &dir,
        scheme,
        &[
            "--parallelism",
            par_crash,
            "--trace-out",
            "head.jsonl",
            "--state-dir",
            "state",
            "--checkpoint-every",
            "25",
            "--crash-at",
            crash_at,
        ],
    );
    assert_eq!(
        crash.status.code(),
        Some(42),
        "planned crash must exit with the crash code: {}",
        String::from_utf8_lossy(&crash.stderr)
    );

    let resume = mtshare(
        &dir,
        scheme,
        &[
            "--parallelism",
            par_resume,
            "--trace-out",
            "tail.jsonl",
            "--state-dir",
            "state",
            "--resume",
        ],
    );
    assert!(resume.status.success(), "resume: {}", String::from_utf8_lossy(&resume.stderr));

    let full_trace = std::fs::read(dir.join("full.jsonl")).unwrap();
    let mut joined = std::fs::read(dir.join("head.jsonl")).unwrap();
    joined.extend(std::fs::read(dir.join("tail.jsonl")).unwrap());
    assert!(
        joined == full_trace,
        "concatenated crash+resume trace differs from uninterrupted run ({name})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn process_crash_and_restart_sequential() {
    crash_restart_roundtrip("seq", "1", "1");
}

#[test]
fn process_crash_and_restart_parallel() {
    crash_restart_roundtrip("par", "4", "4");
}

#[test]
fn process_crash_parallel_restart_sequential() {
    crash_restart_roundtrip("cross", "4", "1");
}

// The batch scheme keeps an open request window between flushes; a wide
// `--batch-window` makes the fixed crash step land while the window is
// non-empty, so the snapshot/WAL must carry the buffered members and the
// pending flush event across the restart.
const BATCH: &[&str] = &["--scheme", "batch", "--batch-window", "45"];

#[test]
fn batch_crash_and_restart_sequential() {
    crash_restart_scheme("batch-seq", BATCH, "1", "1", "60");
}

#[test]
fn batch_crash_parallel_restart_sequential() {
    crash_restart_scheme("batch-cross", BATCH, "4", "1", "60");
}

#[test]
fn batch_crash_mid_window_various_steps() {
    // Sweep crash points so at least one lands between an arrival being
    // buffered and its window's flush — the checkpoint-boundary-mid-window
    // case — regardless of workload drift.
    for (i, step) in ["40", "75", "110"].iter().enumerate() {
        crash_restart_scheme(&format!("batch-step{i}"), BATCH, "1", "1", step);
    }
}
