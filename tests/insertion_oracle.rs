//! The O(m²) insertion DP must agree with brute-force enumeration over
//! `evaluate_schedule` on feasibility and minimum added cost — for
//! arbitrary committed schedules.

use mt_share::model::{
    best_insertion, best_reordering, evaluate_schedule, EvalContext, RequestId, RequestStore,
    RideRequest, Taxi, TaxiId, World,
};
use mt_share::road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
use mt_share::routing::{HotNodeOracle, PathCache};
use proptest::prelude::*;
use std::sync::Arc;

struct Fixture {
    graph: Arc<RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    requests: RequestStore,
}

impl Fixture {
    fn new() -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        Self { graph, cache, oracle, requests: RequestStore::new() }
    }

    fn add_request(&mut self, origin: u32, dest: u32, rho: f64, release: f64) -> RideRequest {
        self.add_party(origin, dest, rho, release, 1)
    }

    fn add_party(
        &mut self,
        origin: u32,
        dest: u32,
        rho: f64,
        release: f64,
        passengers: u8,
    ) -> RideRequest {
        let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
        let req = RideRequest {
            id: RequestId(self.requests.len() as u32),
            release_time: release,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers,
            deadline: release + direct * rho,
            direct_cost_s: direct,
            offline: false,
        };
        self.requests.push(req.clone());
        req
    }
}

/// Brute-force minimum-delta insertion with pickup-deadline enforcement,
/// over an arbitrary cost backend.
fn brute_force(
    taxi: &Taxi,
    req: &RideRequest,
    now: f64,
    world: &World<'_>,
    cost: impl Fn(NodeId, NodeId) -> Option<f64>,
) -> Option<f64> {
    let pos = taxi.position_at(now);
    let mut remaining = 0.0;
    let mut from = pos;
    for ev in taxi.schedule.events() {
        remaining += cost(from, ev.node)?;
        from = ev.node;
    }
    let requests = world.requests;
    let lookup = |r| requests.get(r);
    let ectx = EvalContext {
        start_node: pos,
        start_time: now,
        initial_load: taxi.onboard_load(world.requests),
        capacity: taxi.capacity as u32,
        requests: &lookup,
    };
    let m = taxi.schedule.len();
    let mut best: Option<f64> = None;
    for i in 0..=m {
        for j in (i + 1)..=(m + 1) {
            let s = taxi.schedule.with_insertion(req, i, j);
            if let Some(eval) = evaluate_schedule(&s, &ectx, &cost) {
                if eval.arrival_times[i] > req.pickup_deadline() + 1e-6 {
                    continue;
                }
                let delta = eval.total_cost_s - remaining;
                if best.is_none_or(|b| delta < b) {
                    best = Some(delta);
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_matches_brute_force(
        taxi_pos in 0u32..400,
        existing in proptest::collection::vec((0u32..400, 0u32..400), 0..3),
        probe in (0u32..400, 0u32..400),
        rho_pct in 110u32..250,
        capacity in 1u8..5,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let mut taxi = Taxi::new(TaxiId(0), capacity, NodeId(taxi_pos));

        // Commit a schedule by inserting requests front-to-back (each must
        // be individually feasible; skip degenerate zero trips).
        for &(o, d) in existing.iter() {
            if o == d { continue; }
            let req = f.add_request(o, d, rho + 1.0, 0.0);
            let m = taxi.schedule.len();
            let candidate = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.schedule = candidate;
            taxi.assigned.push(req.id);
        }

        let (po, pd) = probe;
        prop_assume!(po != pd);
        let req = f.add_request(po, pd, rho, 0.0);

        let world = World {
            graph: &f.graph,
            cache: &f.cache,
            oracle: &f.oracle,
            taxis: std::slice::from_ref(&taxi),
            requests: &f.requests,
        };
        let dp = best_insertion(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        let bf = brute_force(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        match (dp, bf) {
            (Some(d), Some(b)) => {
                prop_assert!((d.delta_s - b).abs() < 1.0,
                    "dp {} vs brute force {}", d.delta_s, b);
                // The DP's positions must themselves be feasible.
                let s = taxi.schedule.with_insertion(&req, d.i, d.j);
                prop_assert!(s.precedence_ok());
            }
            (None, None) => {}
            (d, b) => prop_assert!(false, "feasibility disagreement: dp={d:?} brute={b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity-3/4 taxis with multi-seat parties: the DP's range-maximum
    /// load check must agree with brute-force enumeration when committed
    /// requests occupy 1–3 seats each and the probe itself is a party.
    #[test]
    fn dp_matches_brute_force_multi_seat(
        taxi_pos in 0u32..400,
        existing in proptest::collection::vec((0u32..400, 0u32..400, 1u8..4), 0..3),
        probe in (0u32..400, 0u32..400, 1u8..4),
        rho_pct in 110u32..250,
        capacity in 3u8..5,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let mut taxi = Taxi::new(TaxiId(0), capacity, NodeId(taxi_pos));

        // Commit parties front-to-back, skipping any that would overload a
        // leg on their own (the committed plan must be feasible to start).
        for &(o, d, seats) in existing.iter() {
            if o == d || seats > capacity { continue; }
            let req = f.add_party(o, d, rho + 1.0, 0.0, seats);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.assigned.push(req.id);
        }

        let (po, pd, seats) = probe;
        prop_assume!(po != pd);
        let req = f.add_party(po, pd, rho, 0.0, seats);

        let world = World {
            graph: &f.graph,
            cache: &f.cache,
            oracle: &f.oracle,
            taxis: std::slice::from_ref(&taxi),
            requests: &f.requests,
        };
        let dp = best_insertion(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        let bf = brute_force(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        match (dp, bf) {
            (Some(d), Some(b)) => {
                prop_assert!((d.delta_s - b).abs() < 1.0,
                    "dp {} vs brute force {}", d.delta_s, b);
                let s = taxi.schedule.with_insertion(&req, d.i, d.j);
                prop_assert!(s.precedence_ok());
            }
            (None, None) => {}
            (d, b) => prop_assert!(false, "feasibility disagreement: dp={d:?} brute={b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production configuration of Algorithm 1: the DP scored through
    /// the pinned [`HotNodeOracle`] (every probe an O(1) vector read, as
    /// the simulator runs it) must agree with brute-force enumeration over
    /// the cache — same feasibility verdict, same minimum added cost. This
    /// is what entitles the speculative batch path to reuse scores: oracle
    /// answers are canonical whatever is pinned.
    #[test]
    fn pinned_oracle_dp_matches_cache_brute_force(
        taxi_pos in 0u32..400,
        existing in proptest::collection::vec((0u32..400, 0u32..400), 0..3),
        probe in (0u32..400, 0u32..400),
        rho_pct in 110u32..250,
        extra_pin in 0u32..400,
    ) {
        let mut f = Fixture::new();
        let rho = rho_pct as f64 / 100.0;
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(taxi_pos));
        for &(o, d) in existing.iter() {
            if o == d { continue; }
            let req = f.add_request(o, d, rho + 1.0, 0.0);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.assigned.push(req.id);
            // Active requests keep their endpoints pinned, as in the
            // simulator.
            f.oracle.pin(NodeId(o));
            f.oracle.pin(NodeId(d));
        }
        let (po, pd) = probe;
        prop_assume!(po != pd);
        let req = f.add_request(po, pd, rho, 0.0);
        f.oracle.pin(req.origin);
        f.oracle.pin(req.destination);
        // The batch path additionally pins later arrivals' endpoints; this
        // must not perturb anything.
        f.oracle.pin(NodeId(extra_pin));

        let world = World {
            graph: &f.graph,
            cache: &f.cache,
            oracle: &f.oracle,
            taxis: std::slice::from_ref(&taxi),
            requests: &f.requests,
        };
        let before = f.oracle.stats();
        let dp = best_insertion(&taxi, &req, 0.0, &world, |a, b| f.oracle.cost(a, b));
        let after = f.oracle.stats();
        // Every probe's target is a schedule event node or a request
        // endpoint — pinned — so the DP ran entirely on O(1) vector reads.
        prop_assert_eq!(after.searches, before.searches, "DP fell back to a graph search");
        prop_assert!(after.vector_hits > before.vector_hits);

        // Same backend ⇒ exact agreement on feasibility and (near-)exact
        // on the minimum delta.
        let bf_oracle = brute_force(&taxi, &req, 0.0, &world, |a, b| f.oracle.cost(a, b));
        match (dp, bf_oracle) {
            (Some(d), Some(b)) => prop_assert!((d.delta_s - b).abs() < 1.0,
                "oracle dp {} vs oracle brute force {}", d.delta_s, b),
            (None, None) => {}
            (d, b) => prop_assert!(false, "feasibility disagreement: dp={d:?} brute={b:?}"),
        }
        // Cross-backend: the oracle and the cache run different f32 search
        // engines, so a deadline sitting within their ~1e-3 disagreement
        // can legitimately flip feasibility; but when both deem the probe
        // feasible the minimum added cost must agree closely.
        let bf_cache = brute_force(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        if let (Some(d), Some(b)) = (dp, bf_cache) {
            prop_assert!((d.delta_s - b).abs() < 1.0,
                "oracle dp {} vs cache brute force {}", d.delta_s, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exhaustive reordering oracle never does worse than order-
    /// preserving insertion, and whenever insertion is feasible so is
    /// reordering (insertion orders are a subset of reorderings).
    #[test]
    fn reordering_dominates_insertion(
        taxi_pos in 0u32..400,
        existing in proptest::collection::vec((0u32..400, 0u32..400), 0..3),
        probe in (0u32..400, 0u32..400),
    ) {
        let mut f = Fixture::new();
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(taxi_pos));
        for &(o, d) in existing.iter() {
            if o == d { continue; }
            let req = f.add_request(o, d, 6.0, 0.0);
            let m = taxi.schedule.len();
            taxi.schedule = taxi.schedule.with_insertion(&req, m, m + 1);
            taxi.assigned.push(req.id);
        }
        let (po, pd) = probe;
        prop_assume!(po != pd);
        let req = f.add_request(po, pd, 1.8, 0.0);
        let world = World {
            graph: &f.graph,
            cache: &f.cache,
            oracle: &f.oracle,
            taxis: std::slice::from_ref(&taxi),
            requests: &f.requests,
        };
        let ins = best_insertion(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        let reo = best_reordering(&taxi, &req, 0.0, &world, |a, b| f.cache.cost(a, b));
        match (ins, reo) {
            (Some(i), Some(r)) => prop_assert!(r.delta_s <= i.delta_s + 1e-6,
                "reorder {} worse than insertion {}", r.delta_s, i.delta_s),
            (Some(i), None) => prop_assert!(false, "insertion feasible ({}) but reordering not", i.delta_s),
            _ => {}
        }
    }
}
