//! Property tests for the mobility substrate: k-means optimality, map
//! partitioning invariants, and the incremental mobility clusterer.

use mt_share::mobility::{
    bipartite_partition, grid_partition, kmeans, BipartiteConfig, MobilityClusterer,
    MobilityVector, Trip,
};
use mt_share::road::{grid_city, GeoPoint, GridCityConfig, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kmeans_assigns_to_nearest_centroid(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..60),
        k in 1usize..8,
        seed in 0u64..16,
    ) {
        let data: Vec<f64> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
        let r = kmeans(&data, 2, k, seed, 30);
        prop_assert_eq!(r.assignment.len(), points.len());
        let d2 = |p: &(f64, f64), c: &[f64]| (p.0 - c[0]).powi(2) + (p.1 - c[1]).powi(2);
        for (i, p) in points.iter().enumerate() {
            let own = d2(p, &r.centroids[r.assignment[i] as usize * 2..][..2]);
            for c in 0..r.k {
                prop_assert!(own <= d2(p, &r.centroids[c * 2..(c + 1) * 2]) + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_inertia_never_worse_with_more_iterations(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 8..40),
        seed in 0u64..8,
    ) {
        let data: Vec<f64> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
        let short = kmeans(&data, 2, 3, seed, 2);
        let long = kmeans(&data, 2, 3, seed, 40);
        prop_assert!(long.inertia <= short.inertia + 1e-9);
    }

    #[test]
    fn partitionings_cover_exactly_once(
        seed in 0u64..6,
        kappa in 2usize..20,
        use_grid in proptest::bool::ANY,
        n_trips in 50usize..300,
    ) {
        let g = grid_city(&GridCityConfig { rows: 12, cols: 12, seed, ..Default::default() }).unwrap();
        let trips: Vec<Trip> = (0..n_trips)
            .map(|i| Trip {
                origin: NodeId((i as u32 * 37) % 144),
                destination: NodeId((i as u32 * 53 + 17) % 144),
            })
            .collect();
        let p = if use_grid {
            grid_partition(&g, kappa)
        } else {
            bipartite_partition(&g, &trips, &BipartiteConfig { kappa, kt: 3, ..Default::default() })
        };
        // Every vertex in exactly one partition; member lists consistent
        // with the assignment; landmarks inside their partitions.
        let total: usize = p.partitions().map(|q| p.members(q).len()).sum();
        prop_assert_eq!(total, g.node_count());
        for q in p.partitions() {
            for &v in p.members(q) {
                prop_assert_eq!(p.partition_of(v), q);
            }
            prop_assert_eq!(p.partition_of(p.landmark(q)), q);
            // Centroid covering radius covers every member.
            let c = p.centroid(q);
            for &v in p.members(q) {
                prop_assert!(g.point(v).distance_m(&c) <= p.radius_m(q) + 1e-6);
            }
        }
    }

    #[test]
    fn clusterer_count_matches_inserts_minus_removes(
        dirs in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 1..40),
        lambda in 0.0f64..0.99,
    ) {
        let mut c = MobilityClusterer::new(lambda);
        let vectors: Vec<MobilityVector> = dirs
            .iter()
            .map(|&th| {
                MobilityVector::new(
                    GeoPoint::new(30.0, 104.0),
                    GeoPoint::new(30.0 + 0.01 * th.cos(), 104.0 + 0.01 * th.sin()),
                )
            })
            .collect();
        let ids: Vec<_> = vectors.iter().map(|v| c.insert(v)).collect();
        let mut total: u32 = 0;
        for id in c.live_ids() {
            total += c.member_count(id);
        }
        prop_assert_eq!(total as usize, vectors.len());
        for (id, v) in ids.iter().zip(&vectors) {
            c.remove(*id, v);
        }
        prop_assert_eq!(c.len(), 0);
    }
}

/// Helper: expose live cluster ids for the property test.
trait LiveIds {
    fn live_ids(&self) -> Vec<mt_share::mobility::ClusterId>;
}

impl LiveIds for MobilityClusterer {
    fn live_ids(&self) -> Vec<mt_share::mobility::ClusterId> {
        self.live_clusters().collect()
    }
}
