//! Guards for the checked-in `.proptest-regressions` files.
//!
//! The vendored proptest shim does not read regression files, so two
//! things keep them from rotting: (1) every file must stay syntactically
//! valid — a future migration back to upstream proptest must be able to
//! load them — and (2) each pinned counterexample is replayed here as an
//! explicit deterministic test, so the bug it once caught stays caught.
//! CI runs this suite alongside a deep-fuzz pass (`PROPTEST_CASES`) whose
//! fresh failures get folded back into the files and this list.

use mt_share::core::{settle_episode, PartitionStrategy, PassengerTrip, PaymentConfig};
use mt_share::model::RequestId;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, Scenario, ScenarioConfig, SchemeKind, SimConfig, Simulator, WorkloadConfig,
};
use std::sync::Arc;

/// All regression files tracked in the repository. Listing them explicitly
/// (rather than globbing) means a new file must also come with replay
/// coverage below, or this test is updated consciously.
const REGRESSION_FILES: &[&str] = &[
    "tests/payment_properties.proptest-regressions",
    "tests/simulation_fuzz.proptest-regressions",
];

#[test]
fn regression_files_parse() {
    let root = env!("CARGO_MANIFEST_DIR");
    for rel in REGRESSION_FILES {
        let path = format!("{root}/{rel}");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {rel}: {e}"));
        let mut pinned = 0usize;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Upstream proptest's persistence format: `cc <64-hex-digest>`
            // optionally followed by a `# shrinks to ...` comment.
            let rest = line
                .strip_prefix("cc ")
                .unwrap_or_else(|| panic!("{rel}:{}: unknown directive `{line}`", i + 1));
            let digest = rest.split_whitespace().next().unwrap_or("");
            assert_eq!(digest.len(), 64, "{rel}:{}: digest `{digest}` is not 64 chars", i + 1);
            assert!(
                digest.chars().all(|c| c.is_ascii_hexdigit()),
                "{rel}:{}: digest `{digest}` is not hex",
                i + 1
            );
            if let Some(comment) = rest[digest.len()..].trim_start().strip_prefix('#') {
                assert!(
                    comment.trim_start().starts_with("shrinks to"),
                    "{rel}:{}: unexpected trailing comment `{comment}`",
                    i + 1
                );
            }
            pinned += 1;
        }
        assert!(pinned >= 1, "{rel}: no pinned cases — delete the file instead");
    }
}

/// Replays the pinned counterexample from
/// `payment_properties.proptest-regressions`: one rider with a large
/// detour, one on the direct path and one whose solo trip dwarfs the
/// shared route, settled with β ≈ 0.78 at the minimum η. Historically the
/// rebate clamp let rider 2's fare go negative here.
#[test]
fn payment_regression_case_settles_cleanly() {
    let trips = [
        PassengerTrip {
            request: RequestId(0),
            shared_cost_s: 742.7073117229244,
            direct_cost_s: 300.0,
        },
        PassengerTrip { request: RequestId(1), shared_cost_s: 300.0, direct_cost_s: 300.0 },
        PassengerTrip {
            request: RequestId(2),
            shared_cost_s: 2679.492525802072,
            direct_cost_s: 2679.492525802072,
        },
    ];
    let cfg = PaymentConfig { beta: 0.7814627481067329, eta: 0.001, ..Default::default() };
    let s = settle_episode(&trips, 300.0, &cfg);

    assert!(s.benefit >= 0.0);
    assert!(s.benefit <= s.no_share_total + 1e-9);
    let total: f64 = s.fares.iter().map(|(_, f)| f).sum();
    assert!((total - s.driver_income).abs() < 1e-6);
    assert!(s.driver_income >= s.no_share_total - cfg.beta * s.benefit - 1e-6);
    for (t, (_, fare)) in trips.iter().zip(&s.fares) {
        let solo = cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps);
        assert!(*fare <= solo + 1e-9, "fare {fare} > solo {solo}");
        assert!(*fare >= 0.0, "negative fare {fare}");
    }
}

/// Replays the pinned counterexample from
/// `simulation_fuzz.proptest-regressions`: seed 820, a 2-taxi fleet under
/// 21 requests at ρ = 1.75 with mT-Share (scheme_pick = 3). Historically
/// a replanning race here delivered a rider after their deadline.
#[test]
fn simulation_fuzz_regression_case_upholds_invariants() {
    let seed = 820u64;
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 16, cols: 16, seed: seed % 5, ..Default::default() })
            .unwrap(),
    );
    let cache = PathCache::new(graph.clone());
    let cfg = ScenarioConfig {
        kind: mt_share::sim::ScenarioKind::NonPeak,
        n_taxis: 2,
        capacity: 2 + (seed % 3) as u8,
        rho: 1.75,
        n_requests: 21,
        duration_s: 1200.0,
        offline_fraction: 0.0,
        n_historical: 400,
        workload: WorkloadConfig {
            seed: seed.wrapping_mul(31),
            min_trip_m: 400.0,
            ..Default::default()
        },
        seed,
    };
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = build_context(&graph, &scenario.historical, 6, PartitionStrategy::Bipartite);
    let mut scheme = SchemeKind::MtShare.build(&graph, scenario.taxis.len(), Some(ctx), None);
    let r = Simulator::new(graph, cache, &scenario, SimConfig::default()).run(scheme.as_mut());

    assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
    assert_eq!(r.served, r.served_records.len());
    for rec in &r.served_records {
        let req = &scenario.requests[rec.request as usize];
        assert!(rec.pickup_t >= req.release_time - 1e-6);
        assert!(rec.dropoff_t <= req.deadline + 1e-3, "{rec:?} deadline {}", req.deadline);
        assert!(rec.dropoff_t - rec.pickup_t >= req.direct_cost_s - 1.0);
    }
    assert!(r.total_passenger_fares <= r.total_solo_fares + 1e-6);
    assert!((r.total_passenger_fares - r.total_driver_income).abs() < 1e-6);
}
