//! Property tests for the routing substrate: all engines agree with the
//! Bellman-Ford oracle, costs obey the triangle inequality, and caches are
//! transparent.

use mt_share::road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
use mt_share::routing::{
    bellman_ford_cost, AStar, Alt, BidirDijkstra, Dijkstra, HotNodeOracle, MaskedDijkstra,
    NodeMask, PathCache,
};
use proptest::prelude::*;
use std::sync::Arc;

fn city(seed: u64) -> Arc<RoadNetwork> {
    Arc::new(
        grid_city(&GridCityConfig { rows: 12, cols: 12, seed, ..GridCityConfig::default() })
            .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_with_bellman_ford(
        seed in 0u64..8,
        s in 0u32..144,
        t in 0u32..144,
    ) {
        let g = city(seed);
        let (s, t) = (NodeId(s), NodeId(t));
        let oracle = bellman_ford_cost(&g, s, t).expect("strongly connected");
        let mut d = Dijkstra::new(&g);
        let mut bi = BidirDijkstra::new(&g);
        let mut a = AStar::new(&g);
        prop_assert!((d.cost(&g, s, t).unwrap() - oracle).abs() < 1e-2);
        prop_assert!((bi.cost(&g, s, t).unwrap() - oracle).abs() < 1e-2);
        prop_assert!((a.cost(&g, s, t).unwrap() - oracle).abs() < 1e-2);
    }

    #[test]
    fn triangle_inequality_holds(
        seed in 0u64..4,
        a in 0u32..144,
        b in 0u32..144,
        c in 0u32..144,
    ) {
        let g = city(seed);
        let cache = PathCache::new(g);
        let ab = cache.cost(NodeId(a), NodeId(b)).unwrap();
        let bc = cache.cost(NodeId(b), NodeId(c)).unwrap();
        let ac = cache.cost(NodeId(a), NodeId(c)).unwrap();
        prop_assert!(ac <= ab + bc + 1e-2, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn cache_and_oracle_are_transparent(
        seed in 0u64..4,
        s in 0u32..144,
        t in 0u32..144,
        pin_src in proptest::bool::ANY,
    ) {
        let g = city(seed);
        let mut d = Dijkstra::new(&g);
        let want = d.cost(&g, NodeId(s), NodeId(t)).unwrap();

        let cache = PathCache::new(g.clone());
        prop_assert!((cache.cost(NodeId(s), NodeId(t)).unwrap() - want).abs() < 1e-2);
        // Second query must return the identical memoized value.
        prop_assert_eq!(
            cache.cost(NodeId(s), NodeId(t)).unwrap(),
            cache.cost(NodeId(s), NodeId(t)).unwrap()
        );

        let oracle = HotNodeOracle::new(g);
        if pin_src { oracle.pin(NodeId(s)); } else { oracle.pin(NodeId(t)); }
        prop_assert!((oracle.cost(NodeId(s), NodeId(t)).unwrap() - want).abs() < 1e-2);
    }

    #[test]
    fn returned_paths_are_valid_walks_with_exact_cost(
        seed in 0u64..4,
        s in 0u32..144,
        t in 0u32..144,
    ) {
        let g = city(seed);
        let mut bi = BidirDijkstra::new(&g);
        let p = bi.path(&g, NodeId(s), NodeId(t)).unwrap();
        prop_assert_eq!(p.start(), NodeId(s));
        prop_assert_eq!(p.end(), NodeId(t));
        let mut total = 0.0f64;
        for w in p.nodes.windows(2) {
            let c = g.direct_edge_cost(w[0], w[1]);
            prop_assert!(c.is_some(), "non-adjacent consecutive nodes");
            total += c.unwrap() as f64;
        }
        prop_assert!((total - p.cost_s).abs() < 1e-2);
    }

    #[test]
    fn landmark_lower_bound_is_admissible(
        seed in 0u64..6,
        s in 0u32..144,
        t in 0u32..144,
    ) {
        let g = city(seed);
        // Corners plus centre: a deliberately lopsided landmark set so the
        // bound is tight along some corridors and slack along others.
        let landmarks = [0u32, 11, 132, 143, 66].map(NodeId);
        let mut alt = Alt::with_landmarks(&g, &landmarks);
        let mut d = Dijkstra::new(&g);
        let true_cost = d.cost(&g, NodeId(s), NodeId(t)).unwrap();
        let lb = alt.lower_bound(NodeId(s), NodeId(t));
        prop_assert!(
            lb <= true_cost + 1e-3,
            "landmark bound {lb} exceeds true cost {true_cost} for {s}->{t}"
        );
    }

    #[test]
    fn masked_search_never_beats_unmasked(
        seed in 0u64..4,
        s in 0u32..144,
        t in 0u32..144,
        keep_fraction in 3u32..10,
    ) {
        let g = city(seed);
        let mut mask = NodeMask::new(&g);
        mask.clear();
        // Keep endpoints plus a pseudo-random subset of vertices.
        mask.allow(NodeId(s));
        mask.allow(NodeId(t));
        for n in g.nodes() {
            if (n.0.wrapping_mul(2654435761) >> 16) % 10 < keep_fraction {
                mask.allow(n);
            }
        }
        let mut md = MaskedDijkstra::new(&g);
        let mut d = Dijkstra::new(&g);
        let free = d.cost(&g, NodeId(s), NodeId(t)).unwrap();
        if let Some(p) = md.path_masked(&g, NodeId(s), NodeId(t), &mask, None) {
            prop_assert!(p.cost_s >= free - 1e-2, "masked {} < free {}", p.cost_s, free);
        }
    }
}
