//! End-to-end observability: a full simulation with telemetry enabled
//! must emit a schema-valid JSONL event stream and a summary whose
//! numbers are internally consistent with the simulation report.

use mt_share::core::{MtShareConfig, PartitionStrategy};
use mt_share::obs::{json, schema, MemorySink, Obs, Stage, EVENT_KINDS};
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport, Simulator,
};
use std::sync::Arc;

fn observed_run(
    kind: SchemeKind,
    cfg: ScenarioConfig,
    parallelism: usize,
) -> (SimReport, Obs, String) {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = kind
        .needs_context()
        .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
    let mt_cfg = MtShareConfig::default().with_parallelism(parallelism);
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, Some(mt_cfg));
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let sim_cfg = SimConfig { parallelism, ..SimConfig::default() };
    let report =
        Simulator::new(graph, cache, &scenario, sim_cfg).with_obs(obs.clone()).run(scheme.as_mut());
    let trace = buf.lock().unwrap().clone();
    (report, obs, trace)
}

fn count_kind(trace: &str, kind: &str) -> usize {
    let needle = format!("\"ev\":\"{kind}\"");
    trace.lines().filter(|l| l.contains(&needle)).count()
}

#[test]
fn trace_is_schema_valid_and_consistent_with_the_report() {
    let (report, obs, trace) = observed_run(SchemeKind::MtShare, ScenarioConfig::peak(12), 1);
    let n_events = schema::validate_trace(&trace).expect("schema-valid trace");
    assert!(n_events > 0);

    // Every request arrives exactly once; lifecycle counts reconcile
    // with the report.
    assert_eq!(count_kind(&trace, "arrival"), report.n_requests);
    assert_eq!(count_kind(&trace, "commit"), count_kind(&trace, "pickup"));
    assert_eq!(count_kind(&trace, "dropoff"), report.served);
    assert_eq!(count_kind(&trace, "reject"), report.rejected);

    // The aggregate counters agree with the stream.
    let counts = obs.event_counts();
    for (i, kind) in EVENT_KINDS.iter().enumerate() {
        assert_eq!(counts[i] as usize, count_kind(&trace, kind), "count for {kind}");
    }
}

#[test]
fn summary_reports_stage_quantiles_and_cache_rates() {
    let (report, obs, _) = observed_run(SchemeKind::MtShare, ScenarioConfig::peak(12), 2);
    let summary = obs.summary_json().expect("enabled");
    schema::validate_summary(&summary).expect("schema-valid summary");
    let v = json::parse(&summary).unwrap();

    let run = v.get("run").unwrap();
    assert_eq!(run.get("requests").and_then(|n| n.as_num()), Some(report.n_requests as f64));
    assert_eq!(run.get("taxis").and_then(|n| n.as_num()), Some(report.n_taxis as f64));

    // Every pipeline stage was actually timed during the run...
    for stage in [Stage::CandidateSearch, Stage::InsertionDp, Stage::Routing, Stage::Commit] {
        assert!(obs.stage_count(stage) > 0, "{} never recorded", stage.label());
    }
    // ...and its quantiles appear in the summary.
    let stages = v.get("profiling").and_then(|p| p.get("stages")).unwrap();
    for stage in Stage::ALL {
        let block = stages.get(stage.label()).unwrap();
        for q in ["p50_us", "p95_us", "p99_us"] {
            let val = block.get(q).and_then(|n| n.as_num()).unwrap();
            assert!(val >= 0.0, "{}::{q}", stage.label());
        }
    }

    // The shared path cache was exercised and its rates surfaced.
    let cache = v.get("profiling").and_then(|p| p.get("path_cache")).unwrap();
    let hits = cache.get("hits").and_then(|n| n.as_num()).unwrap();
    let ratio = cache.get("hit_ratio").and_then(|n| n.as_num()).unwrap();
    assert!(hits > 0.0);
    assert!((0.0..=1.0).contains(&ratio));
    let oracle = v.get("profiling").and_then(|p| p.get("oracle")).unwrap();
    assert!(oracle.get("vector_hits").and_then(|n| n.as_num()).unwrap() > 0.0);
    // Requests were pinned and released: evictions track completed pins.
    assert!(oracle.get("evictions").and_then(|n| n.as_num()).unwrap() > 0.0);

    // Rejection taxonomy totals reconcile with the report.
    let rej = v.get("rejections").unwrap();
    assert_eq!(rej.get("total").and_then(|n| n.as_num()), Some(report.rejected as f64));

    // The partition filter and insertion DP recorded work.
    assert!(obs.filter_considered() > 0);
    assert!(obs.insertions_attempted() > 0);
}

#[test]
fn parallel_run_reports_worker_utilization() {
    let (_, obs, _) = observed_run(SchemeKind::MtShare, ScenarioConfig::peak(12), 2);
    let v = json::parse(&obs.summary_json().unwrap()).unwrap();
    let workers = v.get("profiling").and_then(|p| p.get("workers")).unwrap();
    assert!(workers.get("batches").and_then(|n| n.as_num()).unwrap() > 0.0);
    let batched = workers.get("batched_requests").and_then(|n| n.as_num()).unwrap();
    assert!(batched > 0.0);
    let mt_share::obs::json::Value::Arr(items) = workers.get("items").unwrap() else {
        panic!("items must be an array");
    };
    assert_eq!(items.len(), 2, "one slot per worker");
    let scored: f64 = items.iter().filter_map(|v| v.as_num()).sum();
    assert!(scored >= batched, "every batched request is scored at least once");
}

#[test]
fn disabled_bus_emits_nothing() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(10));
    let mut scheme = SchemeKind::NoSharing.build(&graph, scenario.taxis.len(), None, None);
    let obs = Obs::disabled();
    let report = Simulator::new(graph, cache, &scenario, SimConfig::default())
        .with_obs(obs.clone())
        .run(scheme.as_mut());
    assert!(report.served > 0);
    assert!(obs.summary_json().is_none());
    assert_eq!(obs.event_counts(), [0; EVENT_KINDS.len()]);
}
