//! End-to-end simulations for every scheme with invariant auditing: each
//! served passenger is delivered before their deadline, is picked up after
//! release, and the accounting adds up.

use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport, Simulator,
};
use std::sync::Arc;

fn run(kind: SchemeKind, cfg: ScenarioConfig) -> (Scenario, SimReport) {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = kind
        .needs_context()
        .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, None);
    let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
    let report = sim.run(scheme.as_mut());
    (scenario, report)
}

fn audit(scenario: &Scenario, report: &SimReport) {
    assert_eq!(report.served, report.served_records.len(), "audit trail complete");
    assert_eq!(report.served + report.rejected, report.n_requests, "every request accounted for");
    for rec in &report.served_records {
        let req = &scenario.requests[rec.request as usize];
        assert!(rec.pickup_t >= req.release_time - 1e-6, "{:?} picked up before release", rec);
        assert!(rec.pickup_t <= rec.dropoff_t, "{rec:?} dropped before pickup");
        assert!(
            rec.dropoff_t <= req.deadline + 1e-3,
            "{:?} missed deadline {} (dropoff {})",
            rec,
            req.deadline,
            rec.dropoff_t
        );
        // Travel cannot beat the shortest path.
        assert!(
            rec.dropoff_t - rec.pickup_t >= req.direct_cost_s - 1.0,
            "{rec:?} beat the shortest path ({} < {})",
            rec.dropoff_t - rec.pickup_t,
            req.direct_cost_s
        );
        assert!(rec.taxi < report.n_taxis as u32);
    }
    // No request served twice.
    let mut ids: Vec<u32> = report.served_records.iter().map(|r| r.request).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.served_records.len(), "request served twice");
}

#[test]
fn peak_all_schemes_respect_invariants() {
    for kind in SchemeKind::PEAK_SET {
        let (scenario, report) = run(kind, ScenarioConfig::peak(14));
        assert!(report.served > 0, "{} served nothing", report.scheme);
        audit(&scenario, &report);
    }
}

#[test]
fn nonpeak_all_schemes_respect_invariants() {
    for kind in SchemeKind::NONPEAK_SET {
        let (scenario, report) = run(kind, ScenarioConfig::nonpeak(14));
        assert!(report.served > 0, "{} served nothing", report.scheme);
        audit(&scenario, &report);
    }
}

#[test]
fn sharing_beats_no_sharing_under_pressure() {
    // Fixed demand well above solo capacity.
    let mut cfg = ScenarioConfig::peak(10);
    cfg.n_requests = 220;
    let (_, ns) = run(SchemeKind::NoSharing, cfg.clone());
    let (_, mt) = run(SchemeKind::MtShare, cfg);
    assert!(
        mt.served as f64 >= ns.served as f64 * 1.1,
        "mT-Share {} should clearly beat No-Sharing {}",
        mt.served,
        ns.served
    );
}

#[test]
fn offline_requests_only_served_through_encounters() {
    let mut cfg = ScenarioConfig::nonpeak(16);
    cfg.offline_fraction = 0.5;
    let (scenario, report) = run(SchemeKind::MtSharePro, cfg);
    // Offline riders can never be picked up before a taxi could have
    // physically encountered them (pickup ≥ release already audited);
    // additionally, served_offline + served_online must equal served.
    audit(&scenario, &report);
    assert_eq!(report.served, report.served_online + report.served_offline);
    assert!(report.n_offline > 0);
}

#[test]
fn payment_conservation_across_schemes() {
    for kind in [SchemeKind::TShare, SchemeKind::PGreedyDp, SchemeKind::MtShare] {
        let (_, r) = run(kind, ScenarioConfig::peak(12));
        assert!(
            (r.total_passenger_fares - r.total_driver_income).abs() < 1e-6,
            "{}: rider payments {} != driver income {}",
            r.scheme,
            r.total_passenger_fares,
            r.total_driver_income
        );
        assert!(r.total_passenger_fares <= r.total_solo_fares + 1e-6, "{}", r.scheme);
        assert!(r.total_benefit >= 0.0);
    }
}

#[test]
fn deterministic_given_seeds() {
    let (_, a) = run(SchemeKind::MtShare, ScenarioConfig::peak(10));
    let (_, b) = run(SchemeKind::MtShare, ScenarioConfig::peak(10));
    assert_eq!(a.served, b.served);
    assert_eq!(a.served_records, b.served_records);
    assert_eq!(a.rejected, b.rejected);
}
