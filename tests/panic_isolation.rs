//! Panic isolation: a scheme whose speculative batch workers panic must
//! degrade every batch to the sequential arrival path — no crash, results
//! identical to a plain sequential run, and the degradation visible only
//! as a profiling counter (never a trace event: the trace must stay
//! byte-identical across parallelism levels).

use mt_share::baselines::NoSharing;
use mt_share::model::{
    DispatchOutcome, DispatchScheme, RideRequest, SpeculativeOutcome, Taxi, TaxiId, Time, World,
};
use mt_share::obs::{MemorySink, Obs};
use mt_share::par::try_par_map_with;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport, Simulator};
use std::sync::Arc;

/// No-Sharing with a speculative path that always panics mid-batch,
/// mirroring the degradation contract of the real mT-Share batch path:
/// `try_par_map_with` isolates the panic, the scheme reports a degraded
/// batch and returns `None`, and the simulator replays the arrivals
/// sequentially.
struct PanickyScheme {
    inner: NoSharing,
    obs: Obs,
}

impl DispatchScheme for PanickyScheme {
    fn name(&self) -> &str {
        "panicky-no-sharing"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs.clone();
        self.inner.set_obs(obs);
    }

    fn install(&mut self, world: &World<'_>) {
        self.inner.install(world);
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        self.inner.dispatch(req, now, world)
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.inner.after_assign(taxi, world);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.inner.on_taxi_progress(taxi, now, world);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.inner.on_taxi_removed(taxi, world);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        self.inner.indexed_taxis()
    }

    fn dispatch_batch_speculative(
        &mut self,
        reqs: &[RideRequest],
        _world: &World<'_>,
    ) -> Option<Vec<SpeculativeOutcome>> {
        let mut states = vec![(); 4];
        let result: Result<Vec<SpeculativeOutcome>, usize> =
            try_par_map_with(&mut states, reqs.len(), |i, _| {
                panic!("injected speculative-worker panic on item {i}")
            });
        assert!(result.is_err(), "every item panics");
        self.obs.record_degraded_batch();
        None
    }
}

fn run(parallelism: usize, panicky: bool) -> (SimReport, Obs, String) {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(12));
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    let cfg = SimConfig { parallelism, ..SimConfig::default() };
    let sim = Simulator::new(graph.clone(), cache, &scenario, cfg).with_obs(obs.clone());
    let report = if panicky {
        let mut scheme = PanickyScheme {
            inner: NoSharing::new(&graph, scenario.taxis.len()),
            obs: Obs::disabled(),
        };
        sim.run(&mut scheme)
    } else {
        let mut scheme = SchemeKind::NoSharing.build(&graph, scenario.taxis.len(), None, None);
        sim.run(scheme.as_mut())
    };
    let trace = buf.lock().unwrap().clone();
    (report, obs, trace)
}

#[test]
fn panicking_speculative_workers_degrade_to_sequential() {
    // Silence the default panic hook: the injected panics are expected and
    // would otherwise flood the test output (one message per batch item).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(|| {
        let (seq, _, seq_trace) = run(1, false);
        let (par, obs, par_trace) = run(4, true);
        assert_eq!(par.served + par.rejected, par.n_requests, "{par:?}");
        assert_eq!((seq.served, seq.rejected), (par.served, par.rejected));
        assert!(obs.degraded_batches() > 0, "the panicking batches must be counted");
        assert_eq!(seq_trace, par_trace, "degraded batches must not perturb the trace");
    });
    std::panic::set_hook(prev);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}
