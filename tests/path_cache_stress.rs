//! Multi-thread stress test for the sharded [`PathCache`]: many threads
//! hammer one shared cache with overlapping seeded query streams, and
//! every single answer is checked against an independent per-thread
//! Dijkstra reference. Afterwards the aggregate stats and the cache's
//! post-hoc answers must be consistent with what the threads saw.

use mt_share::road::{grid_city, GridCityConfig, NodeId};
use mt_share::routing::{Dijkstra, PathCache};
use rand::prelude::*;
use std::sync::Arc;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 300;

#[test]
fn concurrent_queries_agree_with_dijkstra_reference() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let n = graph.node_count() as u32;
    let cache = PathCache::new(graph.clone());

    // Each thread returns its (pair -> cost) observations so the main
    // thread can cross-check threads against each other afterwards.
    let observations: Vec<Vec<((u32, u32), f64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = cache.clone();
                let graph = graph.clone();
                s.spawn(move || {
                    // Overlapping seeds (t / 2): half the threads replay
                    // another thread's exact stream, maximising same-pair
                    // same-shard contention.
                    let mut rng = SmallRng::seed_from_u64(0xC0FFEE + (t / 2) as u64);
                    let mut reference = Dijkstra::new(&graph);
                    let mut seen = Vec::with_capacity(QUERIES_PER_THREAD);
                    let mut issued = 0usize;
                    while issued < QUERIES_PER_THREAD {
                        let a = rng.gen_range(0u32..n);
                        let b = rng.gen_range(0u32..n);
                        if a == b {
                            // Self-queries short-circuit without touching
                            // the memo; keep the accounting below exact.
                            continue;
                        }
                        issued += 1;
                        let got = cache.cost(NodeId(a), NodeId(b));
                        let want = reference.cost(&graph, NodeId(a), NodeId(b));
                        match (got, want) {
                            (Some(g), Some(w)) => {
                                // Both engines run f32 searches; different
                                // relaxation orders can differ by rounding.
                                assert!(
                                    (g - w).abs() <= 1e-2 + 1e-4 * w,
                                    "cache {g} vs dijkstra {w} for ({a},{b})"
                                );
                                seen.push(((a, b), g));
                            }
                            (None, None) => {}
                            (g, w) => {
                                panic!("reachability disagreement for ({a},{b}): cache={g:?} dijkstra={w:?}")
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Cross-thread consistency: any pair observed by several threads must
    // have produced the *same bits* everywhere — the memoised f32 value is
    // canonical no matter which thread computed it first.
    let mut canonical: rustc_hash::FxHashMap<(u32, u32), f64> = Default::default();
    let mut repeats = 0usize;
    for per_thread in &observations {
        for &(pair, cost) in per_thread {
            match canonical.get(&pair) {
                Some(&c) => {
                    repeats += 1;
                    assert_eq!(c.to_bits(), cost.to_bits(), "pair {pair:?} not canonical");
                }
                None => {
                    canonical.insert(pair, cost);
                }
            }
        }
    }
    assert!(repeats > 0, "seed overlap must produce repeated pairs");

    // Replaying every observed pair now must be all hits, bit-identical.
    for (&(a, b), &cost) in &canonical {
        let again = cache.cost(NodeId(a), NodeId(b)).unwrap();
        assert_eq!(again.to_bits(), cost.to_bits());
    }

    // Aggregate accounting: every non-self query landed exactly once in
    // hit or miss, a miss inserts exactly one memo entry, and repeated
    // observations plus the replay were necessarily hits.
    let stats = cache.stats();
    let replay = canonical.len() as u64;
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * QUERIES_PER_THREAD) as u64 + replay,
        "lost or double-counted queries: {stats:?}"
    );
    assert!(stats.hits >= repeats as u64 + replay, "{stats:?}");
    assert_eq!(cache.len() as u64, stats.misses, "{} entries, {stats:?}", cache.len());
    assert!(cache.memory_bytes() > 0);
}

#[test]
fn warm_then_concurrent_reads_are_all_hits() {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let n = graph.node_count() as u32;
    let cache = PathCache::new(graph.clone());
    let sources: Vec<NodeId> = (0..24).map(|i| NodeId(i * 13 % n)).collect();
    let targets: Vec<NodeId> = (0..24).map(|i| NodeId(i * 7 % n + 1)).collect();
    cache.warm(&sources, &targets);
    let warmed = cache.stats();

    let reads: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = cache.clone();
                let sources = &sources;
                let targets = &targets;
                s.spawn(move || {
                    let mut reads = 0u64;
                    for (i, &a) in sources.iter().enumerate() {
                        let b = targets[(i + t) % targets.len()];
                        if a == b {
                            continue; // self-queries bypass the memo
                        }
                        reads += 1;
                        assert!(cache.cost(a, b).is_some());
                    }
                    reads
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let after = cache.stats();
    assert_eq!(after.misses, warmed.misses, "warmed reads must not recompute");
    assert_eq!(after.hits - warmed.hits, reads, "every concurrent read must be a hit");
}
