//! Property tests for the payment model (Eqs. 5–8): conservation, rider
//! protection, and monotone rebate sharing — for arbitrary episodes.

use mt_share::core::{settle_episode, PassengerTrip, PaymentConfig};
use mt_share::model::RequestId;
use proptest::prelude::*;

fn trips_strategy() -> impl Strategy<Value = Vec<PassengerTrip>> {
    proptest::collection::vec(
        (300.0f64..3600.0, 0.0f64..1200.0).prop_map(|(direct, extra)| (direct, direct + extra)),
        1..6,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (direct, shared))| PassengerTrip {
                request: RequestId(i as u32),
                shared_cost_s: shared,
                direct_cost_s: direct,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn settlement_invariants(
        trips in trips_strategy(),
        route_cost in 300.0f64..10_000.0,
        beta in 0.1f64..0.95,
        eta in 0.001f64..0.1,
    ) {
        let cfg = PaymentConfig { beta, eta, ..Default::default() };
        let s = settle_episode(&trips, route_cost, &cfg);

        // Benefit is non-negative (clamped) and bounded by the solo total.
        prop_assert!(s.benefit >= 0.0);
        prop_assert!(s.benefit <= s.no_share_total + 1e-9);

        // Conservation: riders' payments fund exactly the driver income,
        // which is at least Σf^s − β·B (more when zero-fare clamps bind).
        let total: f64 = s.fares.iter().map(|(_, f)| f).sum();
        prop_assert!((total - s.driver_income).abs() < 1e-6);
        prop_assert!(s.driver_income >= s.no_share_total - beta * s.benefit - 1e-6);

        // No rider pays more than their solo fare; no rider is charged a
        // negative fare (the clamp documented in `settle_episode`).
        for (t, (_, fare)) in trips.iter().zip(&s.fares) {
            let solo = cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps);
            prop_assert!(*fare <= solo + 1e-9, "fare {fare} > solo {solo}");
            prop_assert!(*fare >= 0.0);
        }

        // When the benefit is positive, the driver earns more than the
        // plain route fare and riders pay strictly less than solo.
        if s.benefit > 1e-6 {
            prop_assert!(s.driver_income > s.shared_route_fare - 1e-9);
            let solo_total: f64 = trips
                .iter()
                .map(|t| cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps))
                .sum();
            prop_assert!(total < solo_total);
        }
    }

    #[test]
    fn rebates_ordered_by_detour_rate(
        direct in 600.0f64..3600.0,
        extra_small in 0.0f64..300.0,
        extra_gap in 10.0f64..600.0,
        route_cost in 600.0f64..4000.0,
    ) {
        let cfg = PaymentConfig::default();
        let trips = [
            PassengerTrip {
                request: RequestId(0),
                shared_cost_s: direct + extra_small + extra_gap,
                direct_cost_s: direct,
            },
            PassengerTrip {
                request: RequestId(1),
                shared_cost_s: direct + extra_small,
                direct_cost_s: direct,
            },
        ];
        let s = settle_episode(&trips, route_cost, &cfg);
        if s.benefit > 1e-6 {
            // Equal solo fares, bigger detour ⇒ bigger rebate ⇒ lower fare.
            prop_assert!(
                s.fares[0].1 <= s.fares[1].1 + 1e-9,
                "bigger detour pays more: {} vs {}",
                s.fares[0].1,
                s.fares[1].1
            );
        }
    }
}
