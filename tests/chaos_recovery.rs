//! Chaos acceptance: a seeded disruption mix (breakdowns, cancellations,
//! traffic shifts) must be survived end-to-end — every request accounted
//! in exactly one terminal state, at least one orphan successfully
//! re-dispatched, zero invariant violations — and the event trace must
//! stay byte-identical across parallelism levels and same-seed reruns.

use mt_share::chaos::ChaosConfig;
use mt_share::core::{MtShareConfig, PartitionStrategy};
use mt_share::obs::{schema, MemorySink, Obs};
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, BatchConfig, Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport,
    Simulator,
};
use std::sync::Arc;

fn chaos_run(chaos_seed: u64, parallelism: usize) -> (SimReport, String) {
    chaos_run_kind(SchemeKind::MtShare, chaos_seed, parallelism)
}

fn chaos_run_kind(kind: SchemeKind, chaos_seed: u64, parallelism: usize) -> (SimReport, String) {
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(12));
    let ctx = build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite);
    let mt_cfg = MtShareConfig::default().with_parallelism(parallelism);
    let mut scheme = kind.build(&graph, scenario.taxis.len(), Some(ctx), Some(mt_cfg));
    let obs = Obs::enabled();
    let (sink, buf) = MemorySink::new();
    obs.add_sink(Box::new(sink));
    // A wide window keeps requests buffered for long stretches, so the
    // seeded disruptions overlap open windows often.
    let batch = (kind == SchemeKind::MtShareBatch)
        .then_some(BatchConfig { window_s: 45.0, max_retries: 2 });
    let cfg = SimConfig {
        parallelism,
        chaos: Some(ChaosConfig::with_seed(chaos_seed)),
        validate_every: Some(60.0),
        batch,
        ..SimConfig::default()
    };
    let report =
        Simulator::new(graph, cache, &scenario, cfg).with_obs(obs.clone()).run(scheme.as_mut());
    let trace = buf.lock().unwrap().clone();
    (report, trace)
}

fn count_kind(trace: &str, kind: &str) -> usize {
    let needle = format!("\"ev\":\"{kind}\"");
    trace.lines().filter(|l| l.contains(&needle)).count()
}

/// The `"req":N` id on a trace line, when present.
fn req_id(line: &str) -> Option<u32> {
    let rest = &line[line.find("\"req\":")? + 6..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A chaos seed whose plan visibly exercises all three disruption kinds
/// *and* wins at least one successful re-dispatch on this scenario. The
/// scan is deterministic, so the chosen seed is stable across test runs.
fn interesting_seed() -> u64 {
    for seed in 0..32 {
        let (report, trace) = chaos_run(seed, 1);
        if report.redispatched >= 1
            && count_kind(&trace, "breakdown") >= 1
            && count_kind(&trace, "cancel") >= 1
            && count_kind(&trace, "traffic_shift") >= 1
        {
            return seed;
        }
    }
    panic!("no chaos seed in 0..32 produced a successful re-dispatch");
}

#[test]
fn seeded_chaos_recovers_and_accounts_every_request() {
    let (report, trace) = chaos_run(interesting_seed(), 1);
    schema::validate_trace(&trace).expect("chaos trace must be schema-valid");
    assert_eq!(report.served + report.rejected, report.n_requests, "{report:?}");
    assert!(report.redispatched >= 1, "{report:?}");
    assert_eq!(report.invariant_violations, 0, "{report:?}");
    assert_eq!(count_kind(&trace, "dropoff"), report.served);
    assert_eq!(count_kind(&trace, "reject"), report.rejected);

    // Exactly one terminal event (dropoff or reject) per request.
    let mut terminals = vec![0usize; report.n_requests];
    for line in trace.lines() {
        if line.contains("\"ev\":\"dropoff\"") || line.contains("\"ev\":\"reject\"") {
            terminals[req_id(line).expect("terminal events carry a request id") as usize] += 1;
        }
    }
    for (req, n) in terminals.iter().enumerate() {
        assert_eq!(*n, 1, "request {req} terminated {n} times");
    }
}

#[test]
fn chaos_traces_are_byte_identical_across_parallelism_and_reruns() {
    let seed = interesting_seed();
    let (r1, t1) = chaos_run(seed, 1);
    let (_, t1b) = chaos_run(seed, 1);
    let (r4, t4) = chaos_run(seed, 4);
    assert_eq!(t1, t1b, "same seed, same parallelism must reproduce the trace byte-for-byte");
    assert_eq!(t1, t4, "parallel dispatch must not change the trace");
    assert_eq!(
        (r1.served, r1.rejected, r1.cancelled, r1.redispatched),
        (r4.served, r4.rejected, r4.cancelled, r4.redispatched)
    );
}

/// A chaos seed whose plan, under the batch scheme, cancels at least one
/// request while it sits *unassigned* (i.e. buffered in an open window —
/// under batch dispatch a released, unresolved, unassigned request is by
/// definition window-buffered) and breaks at least one taxi. Deterministic
/// scan, so the choice is stable.
fn interesting_batch_seed() -> u64 {
    for seed in 0..32 {
        let (report, trace) = chaos_run_kind(SchemeKind::MtShareBatch, seed, 1);
        let unassigned_cancel = trace
            .lines()
            .any(|l| l.contains("\"ev\":\"cancel\"") && l.contains("\"assigned\":false"));
        if unassigned_cancel && count_kind(&trace, "breakdown") >= 1 && report.served > 0 {
            return seed;
        }
    }
    panic!("no chaos seed in 0..32 cancelled a window-buffered request under batch dispatch");
}

#[test]
fn batch_chaos_open_window_disruptions_terminate_exactly_once() {
    // The satellite case from the issue: a breakdown or cancel hitting a
    // taxi/request involved in an *open* batch window must leave every
    // request in exactly one terminal state — never lost in the window
    // buffer, never double-terminated by both the cancel path and the
    // flush path.
    let (report, trace) = chaos_run_kind(SchemeKind::MtShareBatch, interesting_batch_seed(), 1);
    schema::validate_trace(&trace).expect("batch chaos trace must be schema-valid");
    assert_eq!(report.served + report.rejected, report.n_requests, "{report:?}");
    assert_eq!(report.invariant_violations, 0, "{report:?}");
    assert_eq!(count_kind(&trace, "dropoff"), report.served);
    assert_eq!(count_kind(&trace, "reject"), report.rejected);
    let mut terminals = vec![0usize; report.n_requests];
    for line in trace.lines() {
        if line.contains("\"ev\":\"dropoff\"") || line.contains("\"ev\":\"reject\"") {
            terminals[req_id(line).expect("terminal events carry a request id") as usize] += 1;
        }
    }
    for (req, n) in terminals.iter().enumerate() {
        assert_eq!(*n, 1, "request {req} terminated {n} times");
    }
}

#[test]
fn batch_chaos_traces_are_byte_identical_across_parallelism_and_reruns() {
    let seed = interesting_batch_seed();
    let (r1, t1) = chaos_run_kind(SchemeKind::MtShareBatch, seed, 1);
    let (_, t1b) = chaos_run_kind(SchemeKind::MtShareBatch, seed, 1);
    let (r4, t4) = chaos_run_kind(SchemeKind::MtShareBatch, seed, 4);
    assert_eq!(t1, t1b, "same seed, same parallelism must reproduce the batch trace");
    assert_eq!(t1, t4, "parallel window scoring must not change the batch trace");
    assert_eq!(
        (r1.served, r1.rejected, r1.cancelled, r1.redispatched),
        (r4.served, r4.rejected, r4.cancelled, r4.redispatched)
    );
}
