//! Export the road network and a bipartite partitioning as GeoJSON —
//! the Fig. 3(b)-style visualization (colour points by `label` in
//! geojson.io or kepler.gl).
//!
//! Run with: `cargo run --release --example export_maps`

use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, io as road_io, GridCityConfig};
use mt_share::sim::{build_context, WorkloadConfig, WorkloadGenerator};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 30, cols: 30, ..Default::default() }).expect("valid"),
    );
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let historical = gen.historical_trips(4000);

    let out_dir = std::env::temp_dir().join("mtshare_maps");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let network = road_io::network_to_geojson(&graph);
    let network_path = out_dir.join("network.geojson");
    std::fs::write(&network_path, network).expect("write network");
    println!("wrote {} ({} edges)", network_path.display(), graph.edge_count());

    for (name, strategy) in
        [("bipartite", PartitionStrategy::Bipartite), ("grid", PartitionStrategy::Grid)]
    {
        let ctx = build_context(&graph, &historical, 16, strategy);
        let labels = ctx.partitioning.labels_u32();
        let geojson = road_io::labelled_nodes_to_geojson(&graph, &labels);
        let path = out_dir.join(format!("partitions_{name}.geojson"));
        std::fs::write(&path, geojson).expect("write partitions");
        println!("wrote {} ({} partitions)", path.display(), ctx.kappa());
    }
    println!("open the files in geojson.io and colour points by `label`");
}
