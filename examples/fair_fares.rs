//! The mT-Share payment model (Sec. IV-D): settle a shared episode and
//! show how the ridesharing benefit is split between riders and driver.
//!
//! Run with: `cargo run --release --example fair_fares`

use mt_share::core::{settle_episode, PassengerTrip, PaymentConfig};
use mt_share::model::RequestId;

fn main() {
    let cfg = PaymentConfig::default();
    println!(
        "tariff: flag-fall {:.1} (first {:.1} km), then {:.1}/km; benefit split β = {:.2}, base rate η = {:.2}",
        cfg.fare.base_fare,
        cfg.fare.base_distance_m / 1000.0,
        cfg.fare.per_km,
        cfg.beta,
        cfg.eta
    );

    // Three riders share one taxi. Solo trips would have taken 16, 16 and
    // 24 minutes; on the shared route they experience 19, 16.3 and 27 min.
    let min = 60.0;
    let trips = [
        PassengerTrip {
            request: RequestId(0),
            shared_cost_s: 19.0 * min,
            direct_cost_s: 16.0 * min,
        },
        PassengerTrip {
            request: RequestId(1),
            shared_cost_s: 16.3 * min,
            direct_cost_s: 16.0 * min,
        },
        PassengerTrip {
            request: RequestId(2),
            shared_cost_s: 27.0 * min,
            direct_cost_s: 24.0 * min,
        },
    ];
    // The shared route drives 38 minutes in total while occupied.
    let shared_route_cost = 38.0 * min;

    let s = settle_episode(&trips, shared_route_cost, &cfg);
    println!("\nwithout ridesharing the riders would pay {:.2} in total", s.no_share_total);
    println!("the shared route's regular fare is {:.2}", s.shared_route_fare);
    println!("ridesharing benefit B = {:.2}\n", s.benefit);

    for (t, (id, fare)) in trips.iter().zip(&s.fares) {
        let solo = cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps);
        println!(
            "rider {id}: detour rate σ = {:.3}  solo fare {:>6.2} → shared fare {:>6.2} (saves {:>4.1}%)",
            t.detour_rate(cfg.eta),
            solo,
            fare,
            (1.0 - fare / solo) * 100.0
        );
    }
    let total: f64 = s.fares.iter().map(|(_, f)| f).sum();
    println!(
        "\ndriver income {:.2} = route fare {:.2} + (1-β)·B {:.2}; riders pay {:.2} in total",
        s.driver_income,
        s.shared_route_fare,
        (1.0 - cfg.beta) * s.benefit,
        total
    );
    assert!((total - s.driver_income).abs() < 1e-9, "conservation holds");
}
