//! Quickstart: build a city, train mT-Share, dispatch a few shared rides.
//!
//! Run with: `cargo run --release --example quickstart`

use mt_share::core::{MobilityContext, MtShare, MtShareConfig, PartitionStrategy};
use mt_share::model::{
    DispatchScheme, RequestId, RequestStore, RideRequest, Taxi, TaxiId, TimedRoute, World,
};
use mt_share::road::{grid_city, GridCityConfig, NodeId};
use mt_share::routing::{HotNodeOracle, PathCache};
use mt_share::sim::{WorkloadConfig, WorkloadGenerator};
use std::sync::Arc;

fn main() {
    // 1. A synthetic city (stand-in for OpenStreetMap Chengdu).
    let graph = Arc::new(grid_city(&GridCityConfig::tiny()).expect("valid config"));
    println!("city: {} intersections, {} road segments", graph.node_count(), graph.edge_count());

    // 2. Historical trips train the bipartite map partitioning and the
    //    transition model (Sec. IV-B1 of the paper).
    let mut demand = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let historical = demand.historical_trips(3000);
    let ctx = MobilityContext::build(&graph, &historical, 16, 4, 7, PartitionStrategy::Bipartite);
    println!("bipartite partitioning: {} partitions", ctx.kappa());

    // 3. A small fleet and the shared routing infrastructure.
    let cache = PathCache::new(graph.clone());
    let oracle = HotNodeOracle::new(graph.clone());
    let mut taxis: Vec<Taxi> =
        (0..6).map(|i| Taxi::new(TaxiId(i), 4, NodeId(i * 61 % 400))).collect();
    let mut requests = RequestStore::new();
    let mut scheme = MtShare::new(&graph, ctx, MtShareConfig::default(), taxis.len());
    {
        let world = World {
            graph: &graph,
            cache: &cache,
            oracle: &oracle,
            taxis: &taxis,
            requests: &requests,
        };
        scheme.install(&world);
    }

    // 4. Dispatch a stream of ride requests.
    let trips = [(0u32, 399u32), (21, 380), (44, 360), (399, 0), (120, 310)];
    for (k, (o, d)) in trips.iter().enumerate() {
        let now = k as f64 * 60.0;
        let direct = cache.cost(NodeId(*o), NodeId(*d)).expect("connected city");
        oracle.pin(NodeId(*o));
        oracle.pin(NodeId(*d));
        let req = RideRequest {
            id: RequestId(requests.len() as u32),
            release_time: now,
            origin: NodeId(*o),
            destination: NodeId(*d),
            passengers: 1,
            deadline: now + direct * 1.3,
            direct_cost_s: direct,
            offline: false,
        };
        requests.push(req.clone());

        let outcome = {
            let world = World {
                graph: &graph,
                cache: &cache,
                oracle: &oracle,
                taxis: &taxis,
                requests: &requests,
            };
            scheme.dispatch(&req, now, &world)
        };
        match outcome.assignment {
            Some(a) => {
                println!(
                    "{}: {} -> {} served by {} (detour {:.1} min, {} candidates, {} events scheduled)",
                    req.id,
                    req.origin,
                    req.destination,
                    a.taxi,
                    a.detour_cost_s / 60.0,
                    outcome.candidates_examined,
                    a.schedule.len(),
                );
                // Commit the plan so the next request sees the taxi busy.
                let t = &mut taxis[a.taxi.index()];
                let pos = t.position_at(now);
                let route = TimedRoute::build_on(&graph, pos, now, &a.legs, &a.schedule);
                t.assigned.push(req.id);
                t.set_plan(a.schedule, route, now);
                let world = World {
                    graph: &graph,
                    cache: &cache,
                    oracle: &oracle,
                    taxis: &taxis,
                    requests: &requests,
                };
                scheme.after_assign(&taxis[a.taxi.index()], &world);
            }
            None => println!("{}: rejected ({} candidates)", req.id, outcome.candidates_examined),
        }
    }
}
