//! Peak-hour comparison: run the full simulator for every scheme on the
//! same rush-hour workload and print a Fig. 6-style summary.
//!
//! Run with: `cargo run --release --example peak_hour`

use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{build_context, Scenario, ScenarioConfig, SchemeKind, SimConfig, Simulator};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 40, cols: 40, ..Default::default() }).expect("valid"),
    );
    let cache = PathCache::new(graph.clone());

    // A rush hour: 10 requests per taxi-hour on a 60-taxi fleet.
    let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(60));
    println!(
        "peak scenario: {} taxis, {} requests over {:.0} min",
        scenario.taxis.len(),
        scenario.requests.len(),
        scenario.config.duration_s / 60.0
    );
    let ctx = build_context(&graph, &scenario.historical, 24, PartitionStrategy::Bipartite);

    println!(
        "{:<12} {:>7} {:>10} {:>11} {:>12} {:>11}",
        "scheme", "served", "resp ms", "detour min", "waiting min", "fare save %"
    );
    for kind in SchemeKind::PEAK_SET {
        let mut scheme = kind.build(
            &graph,
            scenario.taxis.len(),
            kind.needs_context().then(|| ctx.clone()),
            None,
        );
        let sim = Simulator::new(graph.clone(), cache.clone(), &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        println!(
            "{:<12} {:>7} {:>10.2} {:>11.2} {:>12.2} {:>11.1}",
            r.scheme,
            r.served,
            r.avg_response_ms,
            r.avg_detour_min,
            r.avg_waiting_min,
            r.fare_saving_pct()
        );
    }
}
