//! Offline hailing: a weekend (non-peak) hour where a third of riders hail
//! at the roadside instead of booking. Compares basic mT-Share against
//! mT-Share_pro, whose probabilistic routing hunts offline passengers.
//!
//! Run with: `cargo run --release --example offline_hailing`

use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, GridCityConfig};
use mt_share::routing::PathCache;
use mt_share::sim::{build_context, Scenario, ScenarioConfig, SchemeKind, SimConfig, Simulator};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 40, cols: 40, ..Default::default() }).expect("valid"),
    );
    let cache = PathCache::new(graph.clone());

    let mut cfg = ScenarioConfig::nonpeak(60);
    cfg.offline_fraction = 1.0 / 3.0;
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let offline = scenario.requests.iter().filter(|r| r.offline).count();
    println!(
        "non-peak scenario: {} taxis, {} requests ({} hailing offline at the roadside)",
        scenario.taxis.len(),
        scenario.requests.len(),
        offline
    );

    let ctx = build_context(&graph, &scenario.historical, 24, PartitionStrategy::Bipartite);
    for kind in [SchemeKind::MtShare, SchemeKind::MtSharePro] {
        let mut scheme = kind.build(&graph, scenario.taxis.len(), Some(ctx.clone()), None);
        let sim = Simulator::new(graph.clone(), cache.clone(), &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        println!(
            "{:<14} served {:>4} ({} online + {} offline)  response {:>6.2} ms  detour {:>5.2} min",
            r.scheme,
            r.served,
            r.served_online,
            r.served_offline,
            r.avg_response_ms,
            r.avg_detour_min
        );
    }
    println!("probabilistic routing trades response time and detour for offline encounters");
}
