//! Run the pipeline on a GAIA-format transaction trace.
//!
//! The paper evaluates on the (non-redistributable) Didi GAIA Chengdu
//! dataset; this example shows the exact path a user with that data takes:
//! parse → snap to the road network → train the partitioner on the older
//! half → simulate dispatch on the newer half. Here the "trace" is written
//! inline from the synthetic generator, so the example is self-contained.
//!
//! Run with: `cargo run --release --example trace_pipeline`

use mt_share::core::PartitionStrategy;
use mt_share::road::{grid_city, GridCityConfig, SpatialGrid};
use mt_share::routing::PathCache;
use mt_share::sim::{
    build_context, materialize, parse_trace, snap_trace, Scenario, ScenarioConfig, SchemeKind,
    SimConfig, Simulator, WorkloadConfig, WorkloadGenerator,
};
use std::fmt::Write as _;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        grid_city(&GridCityConfig { rows: 30, cols: 30, ..Default::default() }).expect("valid"),
    );
    let cache = PathCache::new(graph.clone());
    let grid = SpatialGrid::build(&graph, 250.0);

    // --- Fabricate a GAIA-format CSV from the synthetic demand model. ---
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let mut csv = String::from("# order_id,taxi_id,unix_ts,plng,plat,dlng,dlat\n");
    for (i, raw) in gen.requests(400, 0.0, 1800.0, 0.0).into_iter().enumerate() {
        let o = graph.point(raw.origin);
        let d = graph.point(raw.destination);
        let _ = writeln!(
            csv,
            "order{i},driver{},{:.0},{:.6},{:.6},{:.6},{:.6}",
            i % 37,
            1.5e9 + raw.release_time,
            o.lng,
            o.lat,
            d.lng,
            d.lat
        );
    }

    // --- The real-data path starts here. ---
    let parsed = parse_trace(std::io::Cursor::new(csv)).expect("readable");
    println!("parsed {} records ({} rejected lines)", parsed.records.len(), parsed.errors.len());

    let snapped = snap_trace(&parsed.records, &graph, &grid);
    println!("snapped {} trips ({} dropped by snapping)", snapped.trips.len(), snapped.dropped);

    // Older half trains the partitioner; newer half becomes the live load.
    let half = snapped.trips.len() / 2;
    let historical: Vec<_> = snapped.as_trips().into_iter().take(half).collect();
    let raw_requests = snapped.as_requests(&parsed.records, 0.2);
    let live: Vec<_> = raw_requests.into_iter().skip(half).collect();
    let requests = materialize(&live, &cache, 1.3);
    println!(
        "training on {} trips, dispatching {} live requests",
        historical.len(),
        requests.len()
    );

    let ctx = build_context(&graph, &historical, 16, PartitionStrategy::Bipartite);
    let mut cfg = ScenarioConfig::peak(30);
    cfg.n_historical = 0;
    let taxis = cfg.make_fleet(&graph);
    let scenario = Scenario { config: cfg, historical, requests, taxis };

    let mut scheme = SchemeKind::MtShare.build(&graph, scenario.taxis.len(), Some(ctx), None);
    let report = Simulator::new(graph, cache, &scenario, SimConfig::default()).run(scheme.as_mut());
    println!(
        "{}: served {}/{} ({} offline), detour {:.2} min, waiting {:.2} min",
        report.scheme,
        report.served,
        report.n_requests,
        report.served_offline,
        report.avg_detour_min,
        report.avg_waiting_min
    );
}
