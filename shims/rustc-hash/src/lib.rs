//! Offline stand-in for the `rustc-hash` crate: the Fx (Firefox) hash, a
//! fast non-cryptographic multiply-xor hasher, plus the map/set aliases.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: rotate, xor, multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }

    #[test]
    fn deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(7), h(7));
        assert_ne!(h(7), h(8));
    }
}
