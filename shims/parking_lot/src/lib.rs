//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's poison-free API (`lock()`/`read()`/`write()` return guards
//! directly). A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's behaviour of not poisoning on panic.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// parking_lot's recursion-tolerant read. `std`'s lock has no such
    /// variant, so this is a plain `read()`: recursive reads are fine
    /// as long as no writer is queued between them (real parking_lot
    /// lifts that caveat).
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_guards() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
