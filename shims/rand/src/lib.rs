//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` 0.8 it actually uses:
//! [`rngs::SmallRng`] (xoshiro256++ with SplitMix64 seeding, the same
//! generator family real `rand` 0.8 uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer and float ranges. Streams are
//! deterministic per seed, which is all the workspace relies on; bit
//! parity with upstream `rand` is explicitly *not* promised.

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constants).
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by Lemire's multiply-shift rejection;
/// `span` of 2^64 (encoded as `u64::MAX as u128 + 1`) means no rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(0 < span && span <= u64::MAX as u128 + 1);
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    // 2^64 mod span: low products below this threshold are the biased tail.
    let threshold = span.wrapping_neg() % span;
    loop {
        let prod = (rng.next_u64() as u128) * (span as u128);
        if prod as u64 >= threshold {
            return prod >> 64;
        }
    }
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * (unit_f64(rng) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, ints/floats).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 0x6a09_e667_f3bc_c909, 1, 2];
            }
            Self { s }
        }
    }
}

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }
}
