//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated timing loop
//! instead of criterion's statistical machinery. Each benchmark is warmed
//! up, run until a target measurement time is filled, and reported as
//! mean/median ns per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-batch setup output is sized in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Identifier for a benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        Self { id: format!("{function_id}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing-loop driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` back-to-back for the requested iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

fn run_bench(name: &str, settings: &Settings, mut routine: impl FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count that fills a per-sample slice.
    let mut iters = 1u64;
    let warm_deadline = Instant::now() + settings.warm_up;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if Instant::now() >= warm_deadline {
            break per_iter;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    };
    let per_sample = settings.measurement / settings.sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let median = samples_ns[samples_ns.len() / 2];
    println!(
        "bench {name:<48} mean {:>12}  median {:>12}  ({} samples x {iters} iters)",
        fmt_ns(mean),
        fmt_ns(median),
        samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, routine: R) -> &mut Self {
        run_bench(name, &self.settings, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), &self.settings, routine);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, R: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), &self.settings, |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.settings.sample_size = 3;
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.measurement = Duration::from_millis(3);
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_and_batched() {
        let mut c = Criterion::default();
        c.settings.sample_size = 2;
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.measurement = Duration::from_millis(2);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter_batched(|| vec![1u64; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::new("len", 4), &vec![0u8; 4], |b, v| b.iter(|| v.len()));
        g.finish();
    }
}
