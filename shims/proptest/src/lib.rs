//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, strategies for
//! integer/float ranges, tuples, [`collection::vec`], [`bool::ANY`], the
//! [`Strategy::prop_map`] combinator, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. Unlike real proptest there is **no shrinking**:
//! a failing case reports its case number and assertion message only.

use rand::rngs::SmallRng;
pub use rand::Rng;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
    /// `prop_assert!`-style failure: the property is false.
    Fail(String),
}

/// Result of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform `bool` strategy value (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Everything the `proptest!` macro and typical tests need in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runs one property: draws cases until `config.cases` succeed or a case
/// fails. Rejections (via `prop_assume!`) retry up to a global attempt cap.
/// The `PROPTEST_CASES` environment variable overrides every in-file case
/// count — CI's deep-fuzz passes set it to shake out fresh regressions
/// without editing the tests.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut SmallRng) -> TestCaseResult,
) {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    let mut rng = SmallRng::seed_from_u64(h.finish() ^ 0x5eed_cafe_f00d_d00d);

    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let config = &ProptestConfig { cases };
    let mut passed = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(64);
    let mut attempts = 0u32;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property '{name}': too many prop_assume! rejections ({passed}/{} cases after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {passed}: {msg}")
            }
        }
    }
}

/// The `proptest!` macro: wraps each contained `fn` in a case-drawing loop.
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(...)]`.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    // Without a config: use the default.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each `fn name(arg in strategy, ...) { body }`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Rejects the current case (retried with fresh inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0.0f64..1.0, 5u8..7)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert!(pair.1 == 5 || pair.1 == 6);
        }

        #[test]
        fn vec_and_assume(v in crate::collection::vec(0u32..100, 2..5), flip in crate::bool::ANY) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            // Exercises the bool strategy; either value is acceptable.
            prop_assert!(usize::from(flip) <= 1);
        }

        #[test]
        fn mapped(sum in (1u32..10, 1u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..19).contains(&sum));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
