//! # mT-Share — Mobility-Aware Dynamic Taxi Ridesharing
//!
//! A from-scratch Rust reproduction of *"Mobility-Aware Dynamic Taxi
//! Ridesharing"* (ICDE 2020; journal version IEEE IoT-J 2022). This
//! umbrella crate re-exports the whole stack:
//!
//! - [`road`]: road-network substrate (graph, geometry, synthetic cities);
//! - [`routing`]: shortest-path engines and shared cost oracles;
//! - [`mobility`]: k-means, bipartite map partitioning, landmark graph,
//!   mobility clustering;
//! - [`model`]: requests, taxis, schedules, routes, fares, the
//!   `DispatchScheme` trait;
//! - [`dtree`]: incremental dynamic trees of stop sequences — the
//!   `--scheduler dtree` engine's data structure;
//! - [`core`]: the mT-Share system (dual indexing, matching, basic +
//!   probabilistic routing, payment model);
//! - [`baselines`]: No-Sharing, T-Share, pGreedyDP;
//! - [`sim`]: workload generator and the event-driven simulator;
//! - [`obs`]: structured observability (events, counters, histograms,
//!   stage spans, JSONL export) — see DESIGN.md, "Observability";
//! - [`serve`]: long-lived service runtime (JSONL request feed, bounded
//!   admission queue, graceful drain) — see DESIGN.md, "Service mode";
//! - [`par`]: panic-isolating deterministic parallel map used by batch
//!   dispatch;
//! - [`chaos`]: seeded disruption plans, retry policy and runtime
//!   invariant checks — see DESIGN.md, "Fault model & recovery".
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the paper-to-module map.

pub use mtshare_baselines as baselines;
pub use mtshare_chaos as chaos;
pub use mtshare_core as core;
pub use mtshare_dtree as dtree;
pub use mtshare_mobility as mobility;
pub use mtshare_model as model;
pub use mtshare_obs as obs;
pub use mtshare_par as par;
pub use mtshare_persist as persist;
pub use mtshare_road as road;
pub use mtshare_routing as routing;
pub use mtshare_serve as serve;
pub use mtshare_sim as sim;
