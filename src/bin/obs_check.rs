//! `obs_check` — validates telemetry artifacts against the documented
//! schema.
//!
//! ```text
//! obs_check --trace events.jsonl --summary summary.json --steady steady.jsonl
//! ```
//!
//! Exits 0 when every artifact matches the contract (see DESIGN.md,
//! "Observability"): each trace line is a known event kind with exactly
//! the documented fields, sim time never goes backwards, and the summary
//! carries the full per-stage/cache/rejection layout with internally
//! consistent totals. CI runs this against a fresh simulation before
//! archiving the summary, so schema drift fails the build instead of
//! silently corrupting the perf trajectory.

use mt_share::obs::schema::{validate_steady, validate_summary, validate_trace};

const USAGE: &str =
    "usage: obs_check [--trace FILE.jsonl] [--summary FILE.json] [--steady FILE.jsonl]";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut steady_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace_path = args.next(),
            "--summary" => summary_path = args.next(),
            "--steady" => steady_path = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if trace_path.is_none() && summary_path.is_none() && steady_path.is_none() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let mut failed = false;
    if let Some(path) = trace_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match validate_trace(&text) {
            Ok(n) => println!("{path}: {n} events, schema OK"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = summary_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match validate_summary(&text) {
            Ok(()) => println!("{path}: summary schema OK"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = steady_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match validate_steady(&text) {
            Ok(n) => println!("{path}: {n} steady reports, schema OK"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
