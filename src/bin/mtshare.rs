//! `mtshare` — command-line front end for the reproduction.
//!
//! ```text
//! mtshare simulate --scheme mt-share --taxis 120 --requests 1200 [--nonpeak]
//! mtshare partition --kappa 32 --out partitions.geojson [--grid]
//! mtshare stats [--hours 24]
//! mtshare trace <file.csv>     # GAIA-format trace sanity check
//! ```
//!
//! Everything runs on the synthetic city (`--rows/--cols` to resize);
//! `trace` additionally snaps a real GAIA CSV onto it and reports
//! coverage. Deterministic given `--seed`.

use mt_share::core::PartitionStrategy;
use mt_share::mobility::Trip;
use mt_share::road::{grid_city, io as road_io, GridCityConfig, SpatialGrid};
use mt_share::routing::{ContractionHierarchy, PathCache, RouterBackend};
use mt_share::sim::{
    build_context, parse_trace, snap_trace, stats, BatchConfig, Scenario, ScenarioConfig,
    SchemeKind, SimConfig, Simulator, WorkloadConfig, WorkloadGenerator,
};
use std::sync::Arc;

struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.peek().filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    raw.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Self { flags, positional }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  mtshare simulate [--scheme no-sharing|t-share|pgreedy-dp|mt-share|mt-share-pro|batch]\n                   [--taxis N] [--requests N] [--nonpeak] [--rows N] [--cols N] [--seed N]\n                   [--parallelism N]   # dispatch worker threads; results identical to 1\n                   [--batch-window S]  # rolling-horizon window in sim seconds (with --scheme batch)\n                   [--batch-retries N] # re-queue budget for losing requests (with --scheme batch)\n                   [--router bidir|ch] # exact cost engine; traces identical either way\n                   [--ch-artifact FILE]        # persist/reuse the CH preprocessing (with --router ch)\n                   [--metrics-out FILE.json]   # end-of-run summary (stages, caches, rejections)\n                   [--trace-out FILE.jsonl]    # dispatch-lifecycle event stream\n                   [--chaos-seed N]    # inject seeded disruptions (breakdowns/cancels/shifts)\n                   [--disruptions breakdowns=2,cancels=4,shifts=2]  # mix (with --chaos-seed)\n                   [--validate-every SECONDS]  # runtime invariant checker cadence\n                   [--state-dir DIR]   # checkpoint/WAL persistence (crash-consistent restart)\n                   [--checkpoint-every N]      # snapshot cadence in steps (default 256)\n                   [--resume]          # warm-restart from the newest valid checkpoint + WAL\n                   [--crash-at STEP]   # die (exit 42) after STEP steps, for restart testing\n  mtshare partition [--kappa N] [--grid] [--out FILE.geojson|FILE.csv]\n  mtshare stats [--hours N]\n  mtshare trace FILE.csv"
    );
    std::process::exit(2)
}

fn city(args: &Args) -> Arc<mt_share::road::RoadNetwork> {
    let cfg = GridCityConfig {
        rows: args.num("rows", 40usize),
        cols: args.num("cols", 40usize),
        seed: args.num("seed", 7u64),
        ..GridCityConfig::default()
    };
    Arc::new(grid_city(&cfg).expect("valid city config"))
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args::parse(argv);
    match cmd.as_str() {
        "simulate" => simulate(&args),
        "partition" => partition(&args),
        "stats" => stats_cmd(&args),
        "trace" => trace_cmd(&args),
        _ => usage(),
    }
}

fn simulate(args: &Args) {
    let graph = city(args);
    let parallelism = args.num("parallelism", 1usize).max(1);

    // Telemetry is collected only when at least one output was asked for.
    // Created before the path cache so CH preprocessing lands in the
    // `preprocess_ch` stage span.
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let obs = if metrics_out.is_some() || trace_out.is_some() {
        let obs = mt_share::obs::Obs::enabled();
        if let Some(path) = trace_out {
            let f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            });
            obs.add_sink(Box::new(mt_share::obs::JsonlSink::new(std::io::BufWriter::new(f))));
        }
        obs
    } else {
        mt_share::obs::Obs::disabled()
    };

    let backend = match args.get("router").unwrap_or("bidir") {
        "bidir" => {
            if args.has("ch-artifact") {
                eprintln!("--ch-artifact requires --router ch");
                std::process::exit(2);
            }
            RouterBackend::Bidir
        }
        "ch" => {
            let _span = obs.stage(mt_share::obs::Stage::PreprocessCh);
            let ch = match args.get("ch-artifact") {
                Some(path) => {
                    let (ch, rebuilt) = ContractionHierarchy::load_or_build(
                        std::path::Path::new(path),
                        &graph,
                        parallelism,
                    );
                    if rebuilt {
                        eprintln!("built contraction hierarchy, saved artifact to {path}");
                    } else {
                        eprintln!("loaded contraction hierarchy artifact from {path}");
                    }
                    ch
                }
                None => ContractionHierarchy::build(&graph, parallelism),
            };
            RouterBackend::Ch(Arc::new(ch))
        }
        other => {
            eprintln!("unknown router: {other}");
            usage()
        }
    };
    let cache = PathCache::with_backend(graph.clone(), backend);
    let taxis = args.num("taxis", 60usize);
    let mut cfg = if args.has("nonpeak") {
        ScenarioConfig::nonpeak(taxis)
    } else {
        ScenarioConfig::peak(taxis)
    };
    cfg.n_requests = args.num("requests", cfg.n_requests);
    cfg.rho = args.num("rho", cfg.rho);
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);

    let kind = match args.get("scheme").unwrap_or("mt-share") {
        "no-sharing" => SchemeKind::NoSharing,
        "t-share" => SchemeKind::TShare,
        "pgreedy-dp" => SchemeKind::PGreedyDp,
        "mt-share" => SchemeKind::MtShare,
        "mt-share-pro" => SchemeKind::MtSharePro,
        "batch" | "mt-share-batch" => SchemeKind::MtShareBatch,
        other => {
            eprintln!("unknown scheme: {other}");
            usage()
        }
    };
    let batch = if kind == SchemeKind::MtShareBatch {
        let mut bc = BatchConfig::default();
        if let Some(s) = args.get("batch-window") {
            bc.window_s = s.parse().unwrap_or(0.0);
            if bc.window_s.is_nan() || bc.window_s <= 0.0 {
                eprintln!("--batch-window must be a positive number of seconds, got `{s}`");
                std::process::exit(2);
            }
        }
        bc.max_retries = args.num("batch-retries", bc.max_retries);
        Some(bc)
    } else {
        for f in ["batch-window", "batch-retries"] {
            if args.has(f) {
                eprintln!("--{f} requires --scheme batch");
                std::process::exit(2);
            }
        }
        None
    };
    let ctx = kind.needs_context().then(|| {
        build_context(
            &graph,
            &scenario.historical,
            args.num("kappa", 24usize),
            PartitionStrategy::Bipartite,
        )
    });
    let mt_cfg = (parallelism > 1)
        .then(|| mt_share::core::MtShareConfig::default().with_parallelism(parallelism));
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, mt_cfg);
    let chaos = args.get("chaos-seed").map(|s| {
        let seed: u64 = s.parse().unwrap_or_else(|_| {
            eprintln!("--chaos-seed must be an integer, got `{s}`");
            std::process::exit(2);
        });
        let mut chaos = mt_share::chaos::ChaosConfig::with_seed(seed);
        if let Some(mix) = args.get("disruptions") {
            if let Err(e) = chaos.parse_mix(mix) {
                eprintln!("bad --disruptions spec: {e}");
                std::process::exit(2);
            }
        }
        chaos
    });
    if args.has("disruptions") && chaos.is_none() {
        eprintln!("--disruptions requires --chaos-seed");
        std::process::exit(2);
    }
    let validate_every = args.get("validate-every").map(|s| {
        let every: f64 = s.parse().unwrap_or(0.0);
        if every.is_nan() || every <= 0.0 {
            eprintln!("--validate-every must be a positive number of seconds, got `{s}`");
            std::process::exit(2);
        }
        every
    });
    let persist = match args.get("state-dir") {
        Some(dir) => {
            let mut pc = mt_share::sim::PersistConfig::new(dir);
            pc.checkpoint_every = args.num("checkpoint-every", pc.checkpoint_every);
            pc.resume = args.has("resume");
            if pc.resume {
                eprintln!("resuming from checkpoint state in {dir}");
            }
            pc.crash_at = args.get("crash-at").map(|s| {
                let step: u64 = s.parse().unwrap_or_else(|_| {
                    eprintln!("--crash-at must be a step count, got `{s}`");
                    std::process::exit(2);
                });
                mt_share::chaos::CrashPoint::exit_at(step)
            });
            Some(pc)
        }
        None => {
            for f in ["checkpoint-every", "resume", "crash-at"] {
                if args.has(f) {
                    eprintln!("--{f} requires --state-dir");
                    std::process::exit(2);
                }
            }
            None
        }
    };
    let chaos_on = chaos.is_some();
    let sim_cfg =
        SimConfig { parallelism, chaos, validate_every, persist, batch, ..SimConfig::default() };

    let report =
        Simulator::new(graph, cache, &scenario, sim_cfg).with_obs(obs.clone()).run(scheme.as_mut());

    if let Some(path) = metrics_out {
        let summary = obs.summary_json().expect("telemetry enabled");
        std::fs::write(path, summary + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote summary to {path}");
    }
    if let Some(path) = trace_out {
        eprintln!("wrote event trace to {path}");
    }

    println!("scheme          {}", report.scheme);
    println!("parallelism     {parallelism}");
    println!("taxis           {}", report.n_taxis);
    println!("requests        {} ({} offline)", report.n_requests, report.n_offline);
    println!(
        "served          {} ({:.1}%) = {} online + {} offline",
        report.served,
        report.served_ratio() * 100.0,
        report.served_online,
        report.served_offline
    );
    println!("rejected        {}", report.rejected);
    if chaos_on {
        println!("cancelled       {}", report.cancelled);
        println!("redispatched    {}", report.redispatched);
    }
    if validate_every.is_some() {
        println!("violations      {}", report.invariant_violations);
    }
    println!(
        "response        {:.2} ms avg, {:.2} ms p95",
        report.avg_response_ms, report.p95_response_ms
    );
    println!("detour          {:.2} min avg", report.avg_detour_min);
    println!("waiting         {:.2} min avg", report.avg_waiting_min);
    println!("candidates      {:.1} avg", report.avg_candidates);
    println!("fare saving     {:.1}%", report.fare_saving_pct());
    println!("driver income   {:.1} total", report.total_driver_income);
    println!("index memory    {:.1} KiB", report.index_memory_bytes as f64 / 1024.0);
    println!("wall clock      {:.2} s", report.wall_clock_s);
}

fn partition(args: &Args) {
    let graph = city(args);
    let kappa = args.num("kappa", 24usize);
    let strategy =
        if args.has("grid") { PartitionStrategy::Grid } else { PartitionStrategy::Bipartite };
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let historical: Vec<Trip> = gen.historical_trips(args.num("historical", 5000usize));
    let ctx = build_context(&graph, &historical, kappa, strategy);
    eprintln!(
        "{strategy:?} partitioning: {} partitions over {} vertices",
        ctx.kappa(),
        graph.node_count()
    );
    let labels = ctx.partitioning.labels_u32();
    let out = args.get("out").unwrap_or("partitions.geojson");
    let body = if out.ends_with(".csv") {
        road_io::nodes_to_csv(&graph, Some(&labels))
    } else {
        road_io::labelled_nodes_to_geojson(&graph, &labels)
    };
    std::fs::write(out, body).expect("write output file");
    eprintln!("wrote {out}");
}

fn stats_cmd(args: &Args) {
    let graph = city(args);
    let cache = PathCache::new(graph.clone());
    let hours = args.num("hours", 24usize).min(24);
    let taxis = args.num("taxis", 300usize);
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let profile = mt_share::sim::workday_profile(taxis * 2);
    let stream = gen.day_stream(&profile[..hours], 0.0);
    println!("hour  requests  utilization");
    let util = stats::hourly_utilization(&stream, &cache, taxis, hours);
    for (h, u) in util.iter().enumerate().take(hours) {
        let count = stream
            .iter()
            .filter(|r| {
                r.release_time >= h as f64 * 3600.0 && r.release_time < (h + 1) as f64 * 3600.0
            })
            .count();
        println!("{h:>4}  {count:>8}  {u:>10.3}");
    }
    let q = stats::travel_time_distribution(&stream, &cache, &[0.1, 0.5, 0.9]);
    println!(
        "trip travel time: p10 {:.1} min, p50 {:.1} min, p90 {:.1} min",
        q[0].1, q[1].1, q[2].1
    );
}

fn trace_cmd(args: &Args) {
    let Some(file) = args.positional.first() else { usage() };
    let f = std::fs::File::open(file).unwrap_or_else(|e| {
        eprintln!("cannot open {file}: {e}");
        std::process::exit(1);
    });
    let parsed = parse_trace(std::io::BufReader::new(f)).expect("read trace");
    println!("records  {}", parsed.records.len());
    println!("errors   {}", parsed.total_errors);
    for (line, msg) in parsed.errors.iter().take(5) {
        println!("  line {line}: {msg}");
    }
    if parsed.total_errors > parsed.errors.len() {
        println!(
            "  ... ({} more, first {} retained)",
            parsed.total_errors - 5,
            parsed.errors.len()
        );
    }
    let graph = city(args);
    let grid = SpatialGrid::build(&graph, 250.0);
    let snapped = snap_trace(&parsed.records, &graph, &grid);
    println!("snapped  {} trips ({} dropped)", snapped.trips.len(), snapped.dropped);
}
