//! `mtshare` — command-line front end for the reproduction.
//!
//! ```text
//! mtshare simulate --scheme mt-share --taxis 120 --requests 1200 [--nonpeak]
//! mtshare serve --feed requests.jsonl [--pace 30] [--admission shed-oldest]
//! mtshare partition --kappa 32 --out partitions.geojson [--grid]
//! mtshare stats [--hours 24]
//! mtshare trace <file.csv>     # GAIA-format trace sanity check
//! ```
//!
//! Everything runs on the synthetic city (`--rows/--cols` to resize);
//! `trace` additionally snaps a real GAIA CSV onto it and reports
//! coverage. Deterministic given `--seed`.
//!
//! `serve` is the long-lived service mode: requests arrive over a
//! line-delimited JSON feed (stdin, a file replay, or `tcp:ADDR`),
//! pass a bounded admission queue, and drive the same simulator the
//! one-shot `simulate` uses — a recorded feed (`simulate
//! --feed-record`) replays to a byte-identical event trace.

use mt_share::chaos::failpoint::{FailpointPlan, FailpointSpec};
use mt_share::chaos::RetryPolicy;
use mt_share::core::PartitionStrategy;
use mt_share::mobility::Trip;
use mt_share::persist::PersistError;
use mt_share::road::{grid_city, io as road_io, GridCityConfig, SpatialGrid};
use mt_share::routing::{ContractionHierarchy, CustomizableCh, PathCache, RouterBackend};
use mt_share::serve::{
    open_feed, record_feed, supervise, AdmissionPolicy, AdmissionQueue, Pace, ServeError,
    ServeOptions, ServeOutcome, SuperviseConfig, FEED_FAULT_EXIT, STORAGE_FAULT_EXIT,
};
use mt_share::sim::{
    build_context, parse_trace, snap_trace, stats, BatchConfig, Durability, RunOutcome, Scenario,
    ScenarioConfig, SchemeKind, SimConfig, SimEngine, Simulator, WorkloadConfig, WorkloadGenerator,
};
use std::sync::Arc;

struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.peek().filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    raw.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Self { flags, positional }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  mtshare simulate [--scheme no-sharing|t-share|pgreedy-dp|mt-share|mt-share-pro|batch]\n                   [--taxis N] [--requests N] [--nonpeak] [--rows N] [--cols N] [--seed N]\n                   [--capacity N]      # seats per taxi (1-8, default 4)\n                   [--parallelism N]   # dispatch worker threads; results identical to 1\n                   [--scheduler dp|dtree]      # insertion scoring engine; traces identical either way\n                   [--batch-window S]  # rolling-horizon window in sim seconds (with --scheme batch)\n                   [--batch-retries N] # re-queue budget for losing requests (with --scheme batch)\n                   [--router bidir|dijkstra|ch|cch]  # exact cost engine; traces identical across all\n                   [--ch-artifact FILE]        # persist/reuse the preprocessing (with --router ch|cch)\n                   [--metrics-out FILE.json]   # end-of-run summary (stages, caches, rejections)\n                   [--trace-out FILE.jsonl]    # dispatch-lifecycle event stream\n                   [--feed-record FILE.jsonl]  # dump the arrival stream in the serve feed format\n                   [--chaos-seed N]    # inject seeded disruptions (breakdowns/cancels/shifts)\n                   [--disruptions breakdowns=2,cancels=4,shifts=2]  # mix (with --chaos-seed)\n                   [--validate-every SECONDS]  # runtime invariant checker cadence\n                   [--state-dir DIR]   # checkpoint/WAL persistence (crash-consistent restart)\n                   [--checkpoint-every N]      # snapshot cadence in steps (default 256)\n                   [--resume]          # warm-restart from the newest valid checkpoint + WAL\n                   [--crash-at STEP]   # die (exit 42) after STEP steps, for restart testing\n                   [--durability strict|degrade]  # storage-fault policy: fail fast (exit 44) or\n                                                  # quarantine the state dir and keep serving\n                   [--failpoints SPEC] # seeded I/O faults, e.g. wal-sync-fail=1,snap-write-enospc=1\n                                       # (schedule derived from --chaos-seed)\n  mtshare serve    [--feed -|FILE|tcp:ADDR]    # line-delimited JSON request feed (default stdin)\n                   [--queue-capacity N]        # bounded admission queue (default 64)\n                   [--admission block|shed-oldest|reject-new]\n                   [--pace free|QUANTUM_S]     # burst entries per virtual-time quantum (default free)\n                   [--report-out FILE.jsonl]   # periodic steady-state reports\n                   [--report-every SECONDS]    # report cadence in virtual seconds (default 60)\n                   [--heartbeat-file FILE]     # liveness file rewritten every burst\n                   [--supervise]               # watchdog: restart on crash/fault/stall with backoff\n                   [--supervise-max-restarts N] [--supervise-backoff-ms MS] [--supervise-stall-ms MS]\n                   plus the simulate scenario/persistence flags (--taxis, --requests, --scheme,\n                   --state-dir, --resume, ...); a serve run over a recorded feed produces the\n                   one-shot run's exact event trace\n  mtshare partition [--kappa N] [--grid] [--out FILE.geojson|FILE.csv]\n  mtshare stats [--hours N]\n  mtshare trace FILE.csv"
    );
    std::process::exit(2)
}

fn city(args: &Args) -> Arc<mt_share::road::RoadNetwork> {
    let cfg = GridCityConfig {
        rows: args.num("rows", 40usize),
        cols: args.num("cols", 40usize),
        seed: args.num("seed", 7u64),
        ..GridCityConfig::default()
    };
    Arc::new(grid_city(&cfg).expect("valid city config"))
}

/// Scenario-construction flags shared by `simulate` and `serve`.
const SCENARIO_FLAGS: &[&str] = &[
    "scheme",
    "taxis",
    "requests",
    "nonpeak",
    "rho",
    "rows",
    "cols",
    "seed",
    "kappa",
    "capacity",
    "parallelism",
    "scheduler",
    "batch-window",
    "batch-retries",
    "router",
    "ch-artifact",
    "metrics-out",
    "trace-out",
    "validate-every",
    "state-dir",
    "checkpoint-every",
    "resume",
    "crash-at",
    "chaos-seed",
    "durability",
    "failpoints",
];

const SIMULATE_FLAGS: &[&str] = &["feed-record", "disruptions"];

const SERVE_FLAGS: &[&str] = &[
    "feed",
    "queue-capacity",
    "admission",
    "pace",
    "report-out",
    "report-every",
    "heartbeat-file",
    "supervise",
    "supervise-max-restarts",
    "supervise-backoff-ms",
    "supervise-stall-ms",
];

/// Exits 2 with a clear message: `why` names the flag combination that
/// cannot work.
fn flag_error(why: &str) -> ! {
    eprintln!("{why}");
    std::process::exit(2)
}

/// Early validation of flag names and combinations, before any
/// expensive construction: unknown flags and impossible combinations
/// fail in milliseconds with a message naming the offending flags.
fn validate_flags(cmd: &str, args: &Args, extra: &[&str]) {
    for (name, _) in &args.flags {
        if !SCENARIO_FLAGS.contains(&name.as_str()) && !extra.contains(&name.as_str()) {
            eprintln!("unknown flag --{name} for `mtshare {cmd}`");
            usage();
        }
    }
    if args.has("resume") && !args.has("state-dir") {
        flag_error("--resume requires --state-dir (there is no checkpoint to resume from)");
    }
    for f in ["checkpoint-every", "crash-at"] {
        if args.has(f) && !args.has("state-dir") {
            flag_error(&format!("--{f} requires --state-dir"));
        }
    }
    let batch_scheme = matches!(args.get("scheme"), Some("batch" | "mt-share-batch"));
    for f in ["batch-window", "batch-retries"] {
        if args.has(f) && !batch_scheme {
            flag_error(&format!("--{f} requires --scheme batch"));
        }
    }
    if args.has("ch-artifact") && !matches!(args.get("router"), Some("ch" | "cch")) {
        flag_error("--ch-artifact requires --router ch or --router cch");
    }
    if args.has("disruptions") && !args.has("chaos-seed") {
        flag_error("--disruptions requires --chaos-seed");
    }
    if args.has("failpoints") && !args.has("chaos-seed") {
        flag_error("--failpoints requires --chaos-seed (fault schedules are seeded)");
    }
    if args.has("durability") && !args.has("state-dir") {
        flag_error("--durability requires --state-dir (there is no storage to protect)");
    }
    if args.has("report-every") && !args.has("report-out") {
        flag_error("--report-every requires --report-out (there is nowhere to write reports)");
    }
    if args.has("supervise") && !args.has("state-dir") {
        flag_error("--supervise requires --state-dir (restarts resume from the checkpoint state)");
    }
    for f in ["supervise-max-restarts", "supervise-backoff-ms", "supervise-stall-ms"] {
        if args.has(f) && !args.has("supervise") {
            flag_error(&format!("--{f} requires --supervise"));
        }
    }
    if args.has("supervise-stall-ms") && !args.has("heartbeat-file") {
        flag_error(
            "--supervise-stall-ms requires --heartbeat-file (the stall watchdog watches it)",
        );
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args::parse(argv);
    match cmd.as_str() {
        "simulate" => {
            validate_flags("simulate", &args, SIMULATE_FLAGS);
            simulate(&args)
        }
        "serve" => {
            validate_flags("serve", &args, SERVE_FLAGS);
            serve_cmd(&args)
        }
        "partition" => partition(&args),
        "stats" => stats_cmd(&args),
        "trace" => trace_cmd(&args),
        _ => usage(),
    }
}

/// Telemetry bus: enabled iff at least one output was asked for.
/// Created before the path cache so CH preprocessing lands in the
/// `preprocess_ch` stage span.
fn build_obs(args: &Args) -> mt_share::obs::Obs {
    let wants = args.has("metrics-out") || args.has("trace-out") || args.has("report-out");
    if !wants {
        return mt_share::obs::Obs::disabled();
    }
    let obs = mt_share::obs::Obs::enabled();
    if let Some(path) = args.get("trace-out") {
        let f = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        obs.add_sink(Box::new(mt_share::obs::JsonlSink::new(std::io::BufWriter::new(f))));
    }
    obs
}

fn build_cache(
    args: &Args,
    graph: &Arc<mt_share::road::RoadNetwork>,
    parallelism: usize,
    obs: &mt_share::obs::Obs,
) -> PathCache {
    let backend = match args.get("router").unwrap_or("bidir") {
        "bidir" | "dijkstra" => RouterBackend::Bidir,
        "ch" => {
            let _span = obs.stage(mt_share::obs::Stage::PreprocessCh);
            let ch = match args.get("ch-artifact") {
                Some(path) => {
                    let (ch, rebuilt) = ContractionHierarchy::load_or_build(
                        std::path::Path::new(path),
                        graph,
                        parallelism,
                    )
                    .unwrap_or_else(|e| artifact_error(path, e));
                    if rebuilt {
                        eprintln!("built contraction hierarchy, saved artifact to {path}");
                    } else {
                        eprintln!("loaded contraction hierarchy artifact from {path}");
                    }
                    ch
                }
                None => ContractionHierarchy::build(graph, parallelism),
            };
            RouterBackend::Ch(Arc::new(ch))
        }
        "cch" => {
            let _span = obs.stage(mt_share::obs::Stage::PreprocessCh);
            let cch = match args.get("ch-artifact") {
                Some(path) => {
                    let (cch, rebuilt) =
                        CustomizableCh::load_or_build(std::path::Path::new(path), graph)
                            .unwrap_or_else(|e| artifact_error(path, e));
                    if rebuilt {
                        eprintln!("built customizable hierarchy, saved artifact to {path}");
                    } else {
                        eprintln!("loaded customizable hierarchy artifact from {path}");
                    }
                    cch
                }
                None => CustomizableCh::build(graph),
            };
            RouterBackend::Cch(Arc::new(cch))
        }
        other => {
            eprintln!("unknown router: {other}");
            usage()
        }
    };
    PathCache::with_backend(graph.clone(), backend)
}

/// A routing artifact that must not be silently clobbered (today: a
/// healthy file from an incompatible format version). Exit code 2
/// distinguishes "operator must intervene" from usage errors.
fn artifact_error(path: &str, e: PersistError) -> ! {
    match e {
        PersistError::UnsupportedVersion { found, expected } => eprintln!(
            "routing artifact {path}: format version {found}, this build reads v{expected}; \
             delete the file or regenerate it with a matching binary"
        ),
        other => eprintln!("routing artifact {path}: {other}"),
    }
    std::process::exit(2);
}

fn scenario_config(args: &Args) -> ScenarioConfig {
    let taxis = args.num("taxis", 60usize);
    let mut cfg = if args.has("nonpeak") {
        ScenarioConfig::nonpeak(taxis)
    } else {
        ScenarioConfig::peak(taxis)
    };
    cfg.n_requests = args.num("requests", cfg.n_requests);
    cfg.rho = args.num("rho", cfg.rho);
    if let Some(s) = args.get("capacity") {
        let cap: u8 = s.parse().unwrap_or(0);
        if !(1..=8).contains(&cap) {
            flag_error(&format!("--capacity must be between 1 and 8 seats, got `{s}`"));
        }
        cfg.capacity = cap;
    }
    cfg
}

/// The insertion-scoring engine (`--scheduler dp|dtree`, default `dp`).
fn scheduler_kind(args: &Args) -> mt_share::model::SchedulerKind {
    match args.get("scheduler") {
        None => mt_share::model::SchedulerKind::default(),
        Some(s) => mt_share::model::SchedulerKind::parse(s).unwrap_or_else(|| {
            eprintln!("unknown scheduler: {s} (expected dp|dtree)");
            usage()
        }),
    }
}

/// mT-Share configuration overrides accumulated from the CLI
/// (`--parallelism`, `--scheduler`); `None` when everything is at its
/// default so scheme construction takes the no-override path.
fn mt_config(args: &Args, parallelism: usize) -> Option<mt_share::core::MtShareConfig> {
    let scheduler = scheduler_kind(args);
    (parallelism > 1 || scheduler != mt_share::model::SchedulerKind::default()).then(|| {
        mt_share::core::MtShareConfig::default()
            .with_parallelism(parallelism)
            .with_scheduler(scheduler)
    })
}

fn scheme_kind(args: &Args) -> SchemeKind {
    match args.get("scheme").unwrap_or("mt-share") {
        "no-sharing" => SchemeKind::NoSharing,
        "t-share" => SchemeKind::TShare,
        "pgreedy-dp" => SchemeKind::PGreedyDp,
        "mt-share" => SchemeKind::MtShare,
        "mt-share-pro" => SchemeKind::MtSharePro,
        "batch" | "mt-share-batch" => SchemeKind::MtShareBatch,
        other => {
            eprintln!("unknown scheme: {other}");
            usage()
        }
    }
}

fn batch_config(args: &Args, kind: SchemeKind) -> Option<BatchConfig> {
    (kind == SchemeKind::MtShareBatch).then(|| {
        let mut bc = BatchConfig::default();
        if let Some(s) = args.get("batch-window") {
            bc.window_s = s.parse().unwrap_or(0.0);
            if bc.window_s.is_nan() || bc.window_s <= 0.0 {
                eprintln!("--batch-window must be a positive number of seconds, got `{s}`");
                std::process::exit(2);
            }
        }
        bc.max_retries = args.num("batch-retries", bc.max_retries);
        bc
    })
}

fn validate_every(args: &Args) -> Option<f64> {
    args.get("validate-every").map(|s| {
        let every: f64 = s.parse().unwrap_or(0.0);
        if every.is_nan() || every <= 0.0 {
            eprintln!("--validate-every must be a positive number of seconds, got `{s}`");
            std::process::exit(2);
        }
        every
    })
}

fn chaos_seed(args: &Args) -> Option<u64> {
    args.get("chaos-seed").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("--chaos-seed must be an integer, got `{s}`");
            std::process::exit(2);
        })
    })
}

/// Seeded failpoint plan (`--failpoints`, schedule derived from
/// `--chaos-seed`): one shared plan drives both the storage-fault
/// injector and the serve feed faults, so a single seed reproduces the
/// whole fault schedule.
fn failpoint_plan(args: &Args) -> Option<Arc<FailpointPlan>> {
    args.get("failpoints").map(|spec| {
        let spec = FailpointSpec::parse(spec)
            .unwrap_or_else(|e| flag_error(&format!("bad --failpoints spec: {e}")));
        let seed = chaos_seed(args).expect("validated: --failpoints requires --chaos-seed");
        let plan = FailpointPlan::generate(seed, &spec);
        if plan.has_storage_faults() && !args.has("state-dir") {
            flag_error("--failpoints with storage faults requires --state-dir");
        }
        Arc::new(plan)
    })
}

fn persist_config(
    args: &Args,
    injector: Option<Arc<FailpointPlan>>,
) -> Option<mt_share::sim::PersistConfig> {
    args.get("state-dir").map(|dir| {
        let mut pc = mt_share::sim::PersistConfig::new(dir);
        pc.checkpoint_every = args.num("checkpoint-every", pc.checkpoint_every);
        pc.resume = args.has("resume");
        if pc.resume {
            eprintln!("resuming from checkpoint state in {dir}");
        }
        pc.crash_at = args.get("crash-at").map(|s| {
            let step: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("--crash-at must be a step count, got `{s}`");
                std::process::exit(2);
            });
            mt_share::chaos::CrashPoint::exit_at(step)
        });
        if let Some(s) = args.get("durability") {
            pc.durability = Durability::parse(s).unwrap_or_else(|e| flag_error(&e));
        }
        if let Some(p) = injector {
            pc.fault_injector = Some(p);
        }
        pc
    })
}

fn write_metrics(args: &Args, obs: &mt_share::obs::Obs) {
    if let Some(path) = args.get("metrics-out") {
        let summary = obs.summary_json().expect("telemetry enabled");
        std::fs::write(path, summary + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote summary to {path}");
    }
    if let Some(path) = args.get("trace-out") {
        eprintln!("wrote event trace to {path}");
    }
}

fn simulate(args: &Args) {
    let graph = city(args);
    let parallelism = args.num("parallelism", 1usize).max(1);
    let obs = build_obs(args);
    let cache = build_cache(args, &graph, parallelism, &obs);
    let scenario = Scenario::generate(graph.clone(), &cache, scenario_config(args));

    if let Some(path) = args.get("feed-record") {
        std::fs::write(path, record_feed(&scenario.requests)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("recorded {} feed entries to {path}", scenario.requests.len());
    }

    let kind = scheme_kind(args);
    let batch = batch_config(args, kind);
    let ctx = kind.needs_context().then(|| {
        build_context(
            &graph,
            &scenario.historical,
            args.num("kappa", 24usize),
            PartitionStrategy::Bipartite,
        )
    });
    let mt_cfg = mt_config(args, parallelism);
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, mt_cfg);
    let chaos = args.get("chaos-seed").map(|s| {
        let seed: u64 = s.parse().unwrap_or_else(|_| {
            eprintln!("--chaos-seed must be an integer, got `{s}`");
            std::process::exit(2);
        });
        let mut chaos = mt_share::chaos::ChaosConfig::with_seed(seed);
        if let Some(mix) = args.get("disruptions") {
            if let Err(e) = chaos.parse_mix(mix) {
                eprintln!("bad --disruptions spec: {e}");
                std::process::exit(2);
            }
        }
        chaos
    });
    let validate_every = validate_every(args);
    let persist = persist_config(args, failpoint_plan(args));
    let chaos_on = chaos.is_some();
    let sim_cfg =
        SimConfig { parallelism, chaos, validate_every, persist, batch, ..SimConfig::default() };

    let outcome = Simulator::new(graph, cache, &scenario, sim_cfg)
        .with_obs(obs.clone())
        .run_to_outcome(scheme.as_mut());
    let report = match outcome {
        RunOutcome::Finished(report) => report,
        RunOutcome::Crashed { step } => {
            eprintln!("planned crash after step {step}");
            std::process::exit(42);
        }
        RunOutcome::StorageFault { step } => {
            write_metrics(args, &obs);
            eprintln!(
                "storage fault stopped the run after step {step} (strict durability); \
                 the state dir is resumable with --resume"
            );
            std::process::exit(STORAGE_FAULT_EXIT);
        }
    };

    write_metrics(args, &obs);

    println!("scheme          {}", report.scheme);
    println!("parallelism     {parallelism}");
    println!("taxis           {}", report.n_taxis);
    println!("requests        {} ({} offline)", report.n_requests, report.n_offline);
    println!(
        "served          {} ({:.1}%) = {} online + {} offline",
        report.served,
        report.served_ratio() * 100.0,
        report.served_online,
        report.served_offline
    );
    println!("rejected        {}", report.rejected);
    if chaos_on {
        println!("cancelled       {}", report.cancelled);
        println!("redispatched    {}", report.redispatched);
    }
    if validate_every.is_some() {
        println!("violations      {}", report.invariant_violations);
    }
    println!(
        "response        {:.2} ms avg, {:.2} ms p95",
        report.avg_response_ms, report.p95_response_ms
    );
    println!("detour          {:.2} min avg", report.avg_detour_min);
    println!("waiting         {:.2} min avg", report.avg_waiting_min);
    println!("candidates      {:.1} avg", report.avg_candidates);
    println!("fare saving     {:.1}%", report.fare_saving_pct());
    println!("driver income   {:.1} total", report.total_driver_income);
    println!("index memory    {:.1} KiB", report.index_memory_bytes as f64 / 1024.0);
    println!("wall clock      {:.2} s", report.wall_clock_s);
}

/// Re-executes `mtshare serve` (minus the `--supervise*` family) under
/// the supervisor and exits with its verdict. The first incarnation
/// keeps `--crash-at`/`--failpoints` — those are exactly the faults the
/// supervisor exists to ride out; restarts strip them and resume.
fn supervise_cmd(args: &Args) -> ! {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("supervise: cannot determine the engine executable: {e}");
        std::process::exit(1);
    });
    let mut child_args: Vec<String> = vec!["serve".into()];
    let mut skip_value = false;
    for arg in std::env::args().skip(2) {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg == "--supervise" {
            continue;
        }
        if matches!(
            arg.as_str(),
            "--supervise-max-restarts" | "--supervise-backoff-ms" | "--supervise-stall-ms"
        ) {
            skip_value = true;
            continue;
        }
        child_args.push(arg);
    }
    let cfg = SuperviseConfig {
        retry: RetryPolicy {
            max_attempts: args.num("supervise-max-restarts", 3u32),
            base_delay_s: args.num("supervise-backoff-ms", 200u64) as f64 / 1000.0,
            backoff_factor: 2.0,
        },
        stall_timeout: args.get("supervise-stall-ms").map(|s| {
            std::time::Duration::from_millis(s.parse().unwrap_or_else(|_| {
                flag_error(&format!("--supervise-stall-ms must be milliseconds, got `{s}`"))
            }))
        }),
        heartbeat: args.get("heartbeat-file").map(std::path::PathBuf::from),
    };
    std::process::exit(supervise(exe.as_os_str(), &child_args, &cfg));
}

fn serve_cmd(args: &Args) {
    if args.has("supervise") {
        supervise_cmd(args);
    }
    // Admission configuration fails fast, before the city is built.
    let queue = AdmissionQueue {
        capacity: args.num("queue-capacity", 64usize),
        policy: match args.get("admission") {
            None => AdmissionPolicy::Block,
            Some(s) => AdmissionPolicy::parse(s).unwrap_or_else(|e| flag_error(&e)),
        },
    };
    queue.validate().unwrap_or_else(|e| flag_error(&e));
    let pace = match args.get("pace").unwrap_or("free") {
        "free" => Pace::Free,
        s => {
            let quantum_s: f64 = s.parse().unwrap_or(0.0);
            if quantum_s.is_nan() || quantum_s <= 0.0 {
                flag_error(&format!("--pace must be `free` or a positive quantum, got `{s}`"));
            }
            Pace::Virtual { quantum_s }
        }
    };
    let report_every_s = args.has("report-out").then(|| {
        let every: f64 = args.num("report-every", 60.0);
        if every.is_nan() || every <= 0.0 {
            flag_error("--report-every must be a positive number of virtual seconds");
        }
        every
    });

    let graph = city(args);
    let parallelism = args.num("parallelism", 1usize).max(1);
    let obs = build_obs(args);
    let cache = build_cache(args, &graph, parallelism, &obs);
    // The same generation as `simulate`, so the fleet and historical
    // trips are identical — only the arrival stream is replaced by the
    // feed. The generated requests are discarded.
    let mut scenario = Scenario::generate(graph.clone(), &cache, scenario_config(args));
    scenario.requests = Vec::new();

    let kind = scheme_kind(args);
    let batch = batch_config(args, kind);
    let ctx = kind.needs_context().then(|| {
        build_context(
            &graph,
            &scenario.historical,
            args.num("kappa", 24usize),
            PartitionStrategy::Bipartite,
        )
    });
    let mt_cfg = mt_config(args, parallelism);
    let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, mt_cfg);
    let failplan = failpoint_plan(args);
    let feed_faults = failplan.as_ref().map(|p| p.feed_faults()).filter(|f| !f.is_empty());
    let sim_cfg = SimConfig {
        parallelism,
        validate_every: validate_every(args),
        persist: persist_config(args, failplan),
        batch,
        ..SimConfig::default()
    };

    let n_nodes = graph.node_count() as u32;
    let sim =
        Simulator::new(graph, cache, &scenario, sim_cfg).with_obs(obs.clone()).with_streaming();
    let engine = SimEngine::new(sim, scheme.as_mut());
    if engine.resumed() {
        eprintln!("restored {} ingested requests; continuing the feed", engine.ingested());
    }

    let feed = open_feed(args.get("feed").unwrap_or("-")).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let mut report_file = args.get("report-out").map(|path| {
        std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        }))
    });

    let opts = ServeOptions {
        queue,
        pace,
        report_every_s,
        n_nodes,
        heartbeat: args.get("heartbeat-file").map(std::path::PathBuf::from),
        feed_faults,
    };
    let outcome = mt_share::serve::serve(
        engine,
        scheme.as_mut(),
        feed,
        opts,
        &obs,
        report_file.as_mut().map(|w| w as &mut dyn std::io::Write),
    );
    match outcome {
        Ok(ServeOutcome::Finished(report)) => {
            drop(report_file);
            write_metrics(args, &obs);
            if args.has("report-out") {
                eprintln!("wrote steady-state reports to {}", args.get("report-out").unwrap());
            }
            println!("scheme          {}", report.scheme);
            println!("parallelism     {parallelism}");
            println!("taxis           {}", report.n_taxis);
            println!("requests        {} ({} offline)", report.n_requests, report.n_offline);
            println!("served          {} ({:.1}%)", report.served, report.served_ratio() * 100.0);
            println!("rejected        {}", report.rejected);
            println!("wall clock      {:.2} s", report.wall_clock_s);
        }
        Ok(ServeOutcome::Crashed { step }) => {
            eprintln!("planned crash after step {step}");
            std::process::exit(42);
        }
        Ok(ServeOutcome::StorageFault { step }) => {
            drop(report_file);
            write_metrics(args, &obs);
            eprintln!(
                "storage fault stopped the serve loop after step {step} (strict durability); \
                 the state dir is resumable with --resume"
            );
            std::process::exit(STORAGE_FAULT_EXIT);
        }
        Err(ServeError::Feed { line, kind, msg }) => {
            drop(report_file);
            write_metrics(args, &obs);
            eprintln!("serve: feed fault ({kind}) at line {line}: {msg}");
            eprintln!("the state dir (if any) is crash-consistent; restart with --resume");
            std::process::exit(FEED_FAULT_EXIT);
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

fn partition(args: &Args) {
    let graph = city(args);
    let kappa = args.num("kappa", 24usize);
    let strategy =
        if args.has("grid") { PartitionStrategy::Grid } else { PartitionStrategy::Bipartite };
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let historical: Vec<Trip> = gen.historical_trips(args.num("historical", 5000usize));
    let ctx = build_context(&graph, &historical, kappa, strategy);
    eprintln!(
        "{strategy:?} partitioning: {} partitions over {} vertices",
        ctx.kappa(),
        graph.node_count()
    );
    let labels = ctx.partitioning.labels_u32();
    let out = args.get("out").unwrap_or("partitions.geojson");
    let body = if out.ends_with(".csv") {
        road_io::nodes_to_csv(&graph, Some(&labels))
    } else {
        road_io::labelled_nodes_to_geojson(&graph, &labels)
    };
    std::fs::write(out, body).expect("write output file");
    eprintln!("wrote {out}");
}

fn stats_cmd(args: &Args) {
    let graph = city(args);
    let cache = PathCache::new(graph.clone());
    let hours = args.num("hours", 24usize).min(24);
    let taxis = args.num("taxis", 300usize);
    let mut gen = WorkloadGenerator::new(graph.clone(), WorkloadConfig::default());
    let profile = mt_share::sim::workday_profile(taxis * 2);
    let stream = gen.day_stream(&profile[..hours], 0.0);
    println!("hour  requests  utilization");
    let util = stats::hourly_utilization(&stream, &cache, taxis, hours);
    for (h, u) in util.iter().enumerate().take(hours) {
        let count = stream
            .iter()
            .filter(|r| {
                r.release_time >= h as f64 * 3600.0 && r.release_time < (h + 1) as f64 * 3600.0
            })
            .count();
        println!("{h:>4}  {count:>8}  {u:>10.3}");
    }
    let q = stats::travel_time_distribution(&stream, &cache, &[0.1, 0.5, 0.9]);
    println!(
        "trip travel time: p10 {:.1} min, p50 {:.1} min, p90 {:.1} min",
        q[0].1, q[1].1, q[2].1
    );
}

fn trace_cmd(args: &Args) {
    let Some(file) = args.positional.first() else { usage() };
    let f = std::fs::File::open(file).unwrap_or_else(|e| {
        eprintln!("cannot open {file}: {e}");
        std::process::exit(1);
    });
    let parsed = parse_trace(std::io::BufReader::new(f)).expect("read trace");
    println!("records  {}", parsed.records.len());
    println!("errors   {}", parsed.total_errors);
    for (line, msg) in parsed.errors.iter().take(5) {
        println!("  line {line}: {msg}");
    }
    if parsed.total_errors > parsed.errors.len() {
        println!(
            "  ... ({} more, first {} retained)",
            parsed.total_errors - 5,
            parsed.errors.len()
        );
    }
    let graph = city(args);
    let grid = SpatialGrid::build(&graph, 250.0);
    let snapped = snap_trace(&parsed.records, &graph, &grid);
    println!("snapped  {} trips ({} dropped)", snapped.trips.len(), snapped.dropped);
}
